#!/usr/bin/env python3
"""CI perf guard for the batch-probe engine and the concurrent LSM engine.

Compares a fresh smoke run against the guard floors committed in the
repo's BENCH_*.json and fails (exit 1) when a measured ratio drops
below `ratio` (default 0.9) of the committed floor. The bench type is
dispatched on the committed file's "bench" field:

  batch_probe     bench_batch_probe --smoke    bloomRF point/range batch
                  speedup over the scalar loop.
  lsm_concurrent  bench_lsm_throughput --smoke ShardedDb MultiGet/
                  ScanRange/Put/mixed 1->8-thread scaling (8 shards),
                  the 1-shard/plain-Db MultiGet throughput ratio, the
                  WAL-on/WAL-off put-throughput ratio (group-commit
                  overhead, wal_fsync=false), and the 4-worker/serial
                  parallel-compaction sustained-ingest ratio.
  adaptive        bench_adaptive_filters --smoke  adaptive-vs-static
                  throughput ratios per workload phase (the tuning
                  loop keeps up with the best static policy and beats
                  the worst in at least one phase) and the
                  sampling-on/off Get ratio (sampler hot-path tax).

The committed `guard` floors are intentionally conservative (the
benches write them as 0.8x of their measured values, scaling floors
additionally clamped for low-core bench hosts) so the check catches
real regressions — a batch path sliding back to scalar speed, a
sharded fan-out serializing — rather than scheduler noise on shared CI
runners.

Usage: perf_guard.py CURRENT.json COMMITTED.json [ratio]
"""

import json
import sys


def speedup(doc, section, name):
    for row in doc[section]:
        if row["filter"] == name:
            return row["speedup"]
    raise SystemExit(f"perf_guard: no '{name}' row in '{section}' section")


def scaling_cell(doc, shards, threads):
    for row in doc["scaling"]:
        if row["shards"] == shards and row["threads"] == threads:
            return row
    raise SystemExit(
        f"perf_guard: no scaling row for shards={shards} threads={threads}"
    )


def batch_probe_checks(current, committed):
    guard = committed["guard"]
    return [
        ("bloomrf point-batch speedup", speedup(current, "point", "bloomrf"),
         guard["bloomrf_point_speedup"]),
        ("bloomrf range-batch speedup", speedup(current, "range", "bloomrf"),
         guard["bloomrf_range_speedup"]),
    ]


def write_cell(doc, shards, threads):
    for row in doc["write"]:
        if row["shards"] == shards and row["threads"] == threads:
            return row
    raise SystemExit(
        f"perf_guard: no write row for shards={shards} threads={threads}"
    )


def delete_cell(doc, shards, threads):
    for row in doc["delete"]:
        if row["shards"] == shards and row["threads"] == threads:
            return row
    raise SystemExit(
        f"perf_guard: no delete row for shards={shards} threads={threads}"
    )


def lsm_concurrent_checks(current, committed):
    guard = committed["guard"]
    t1 = scaling_cell(current, 8, 1)
    t8 = scaling_cell(current, 8, 8)
    s1 = scaling_cell(current, 1, 1)
    multiget_scaling = (
        t8["multiget_mops"] / t1["multiget_mops"] if t1["multiget_mops"] else 0
    )
    scanrange_scaling = (
        t8["scanrange_qps"] / t1["scanrange_qps"] if t1["scanrange_qps"] else 0
    )
    base = current["baseline"]["db_multiget_mops"]
    single_shard_ratio = s1["multiget_mops"] / base if base else 0
    # Scaling is bounded by the runner's cores. When this run has fewer
    # than 8, the committed floor (possibly from a big bench host) is
    # unreachable for physical, not regression, reasons — only require
    # that 8 threads don't collapse below ~serial speed. The
    # single-shard overhead and WAL ratios are core-count independent.
    hw = current.get("hardware_concurrency", 0)
    scaling_cap = 0.8 if hw and hw < 8 else float("inf")
    checks = [
        ("multiget 1->8-thread scaling", multiget_scaling,
         min(guard["multiget_scaling_8t"], scaling_cap)),
        ("scanrange 1->8-thread scaling", scanrange_scaling,
         min(guard["scanrange_scaling_8t"], scaling_cap)),
        ("1-shard/plain-Db multiget ratio", single_shard_ratio,
         guard["single_shard_multiget_ratio"]),
    ]
    # Write-path floors arrived with the group-commit WAL; tolerate a
    # committed file that predates them so the two changes can land in
    # either order.
    if "put_scaling_8t" in guard and "write" in current:
        wal = current["wal"]
        max_shards = wal["max_shards"]
        max_threads = wal["max_threads"]
        w1 = write_cell(current, max_shards, 1)
        wt = write_cell(current, max_shards, max_threads)
        put_scaling = (
            wt["put_mops"] / w1["put_mops"] if w1["put_mops"] else 0
        )
        mixed_scaling = (
            wt["mixed_mops"] / w1["mixed_mops"] if w1["mixed_mops"] else 0
        )
        # Write scaling needs a lower small-host cap than read scaling:
        # oversubscribed writers contend on the group-commit mutex and
        # the memtable seal lock, so 8 threads on 1 core land around
        # half of serial — normal, not a regression. Only guard against
        # a total collapse (threads deadlocking or fully serializing
        # through a convoy).
        write_scaling_cap = 0.3 if hw and hw < 8 else float("inf")
        checks += [
            ("put 1->8-thread scaling", put_scaling,
             min(guard["put_scaling_8t"], write_scaling_cap)),
            ("mixed 1->8-thread scaling", mixed_scaling,
             min(guard["mixed_scaling_8t"], write_scaling_cap)),
            ("WAL-on/off put ratio (1s/1t)", wal["put_ratio_1s1t"],
             guard["wal_put_ratio"]),
        ]
    # Delete-path floors arrived with first-class tombstones; tolerate
    # committed files that predate them.
    if "delete_scaling_8t" in guard and "delete" in current:
        wal = current["wal"]
        max_shards = wal["max_shards"]
        max_threads = wal["max_threads"]
        d1 = delete_cell(current, max_shards, 1)
        dt = delete_cell(current, max_shards, max_threads)
        delete_scaling = (
            dt["delete_mops"] / d1["delete_mops"] if d1["delete_mops"] else 0
        )
        pdg_scaling = (
            dt["pdg_mops"] / d1["pdg_mops"] if d1["pdg_mops"] else 0
        )
        d11 = delete_cell(current, 1, 1)
        w11 = write_cell(current, 1, 1)
        delete_put_ratio = (
            d11["delete_mops"] / w11["put_mops"] if w11["put_mops"] else 0
        )
        # Same oversubscription story as the put/mixed cells above.
        write_scaling_cap = 0.3 if hw and hw < 8 else float("inf")
        checks += [
            ("delete 1->8-thread scaling", delete_scaling,
             min(guard["delete_scaling_8t"], write_scaling_cap)),
            ("25/25/50 p/d/g 1->8-thread scaling", pdg_scaling,
             min(guard["pdg_scaling_8t"], write_scaling_cap)),
            ("delete/put throughput ratio (1s/1t)", delete_put_ratio,
             guard["delete_put_ratio"]),
        ]
    # Read-amplification floor arrived with leveled compaction; the
    # ratio (single-threaded Get, compaction on / off) is core-count
    # independent. Tolerate committed files that predate it.
    if "read_amp_get_ratio" in guard and "read_amp" in current:
        checks.append(
            ("compaction read-amp Get ratio (on/off)",
             current["read_amp"]["get_ratio"],
             guard["read_amp_get_ratio"])
        )
    # Parallel-compaction floor arrived with the multi-job scheduler:
    # sustained ingest (ingest + full compaction drain) with 4 workers
    # vs serial. The parallel win needs spare cores — on a runner with
    # fewer than 8, only require that the parallel scheduler does not
    # collapse below serial speed (scheduler overhead, claim-mask
    # contention, or a subcompaction convoy would show up here even on
    # one core). Tolerate committed files that predate it.
    if "compaction_ingest_ratio_4t" in guard and "compaction" in current:
        compaction_cap = 1.0 if hw and hw < 8 else float("inf")
        checks.append(
            ("parallel-compaction sustained-ingest ratio (4w/serial)",
             current["compaction"]["ingest_ratio_4t"],
             min(guard["compaction_ingest_ratio_4t"], compaction_cap))
        )
    return checks


def phase_row(doc, name):
    for row in doc["phases"]:
        if row["phase"] == name:
            return row
    raise SystemExit(f"perf_guard: no '{name}' phase row")


def adaptive_checks(current, committed):
    guard = committed["guard"]
    checks = [
        (f"adaptive/best-static ratio ({phase})",
         phase_row(current, phase)["adaptive_over_best"],
         guard[f"adaptive_over_best_{phase}"])
        for phase in ("point", "wide", "zipf")
    ]
    # The "beats the worst static" bar only has to hold somewhere: the
    # whole point of re-tuning is that no phase is a disaster, so the
    # best phase's margin is the honest summary statistic.
    over_worst_max = max(row["adaptive_over_worst"]
                         for row in current["phases"])
    checks.append(("adaptive/worst-static ratio (best phase)",
                   over_worst_max, guard["adaptive_over_worst_max"]))
    checks.append(("sampling-on/off Get ratio",
                   current["sampler"]["ratio"],
                   guard["sampler_get_ratio"]))
    return checks


def main():
    if len(sys.argv) < 3:
        raise SystemExit(__doc__)
    with open(sys.argv[1]) as f:
        current = json.load(f)
    with open(sys.argv[2]) as f:
        committed = json.load(f)
    ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 0.9

    bench = committed.get("bench", "batch_probe")
    if current.get("bench", bench) != bench:
        raise SystemExit(
            f"perf_guard: bench mismatch ({current.get('bench')} vs {bench})"
        )
    if bench == "batch_probe":
        checks = batch_probe_checks(current, committed)
    elif bench == "lsm_concurrent":
        checks = lsm_concurrent_checks(current, committed)
    elif bench == "adaptive":
        checks = adaptive_checks(current, committed)
    else:
        raise SystemExit(f"perf_guard: unknown bench '{bench}'")

    failed = False
    for label, got, floor in checks:
        need = floor * ratio
        ok = got >= need
        print(
            f"{'OK  ' if ok else 'FAIL'} {label} "
            f"{got:.3f} vs floor {floor:.3f} * {ratio} = {need:.3f}"
        )
        failed |= not ok
    if failed:
        print(f"perf_guard: {bench} ratios regressed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

// Quickstart: build a bloomRF filter, insert keys online, run point-
// and range-queries, inspect the configuration and serialize it.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "filters/registry.h"

using namespace bloomrf;

int main() {
  // 1. Basic, tuning-free bloomRF: just the number of keys and a
  //    space budget. Good for ranges up to ~2^14.
  BloomRF filter(BloomRFConfig::Basic(/*n=*/1'000'000, /*bits_per_key=*/14));
  std::printf("basic config: %s\n", filter.config().DebugString().c_str());

  // 2. Insertion is online: no build phase, safe under concurrency.
  for (uint64_t k = 0; k < 1'000'000; ++k) {
    filter.Insert(k * 9973);  // some scattered keys
  }

  // 3. Point queries: false means definitely absent.
  std::printf("contains 9973*5      -> %d (expect 1)\n",
              filter.MayContain(9973 * 5));
  std::printf("contains 42          -> %d (likely 0)\n",
              filter.MayContain(42));

  // 4. Range queries: false means the whole interval is empty.
  std::printf("range [9973*7, +10]  -> %d (expect 1)\n",
              filter.MayContainRange(9973 * 7, 9973 * 7 + 10));
  std::printf("range [1, 9000]      -> %d (0 w.h.p.; 9973 is outside — a 1 "
              "would be a false positive)\n",
              filter.MayContainRange(1, 9000));

  // 5. For large query ranges, let the tuning advisor pick the
  //    configuration (delta ladder, segments, exact layer).
  AdvisorParams params;
  params.n = 1'000'000;
  params.total_bits = 18 * params.n;
  params.max_range = 1e9;
  AdvisorResult advised = AdviseConfig(params);
  std::printf("advised config: %s\n", advised.config.DebugString().c_str());
  std::printf("expected FPR: range=%.4f point=%.4f\n",
              advised.expected_range_fpr, advised.expected_point_fpr);

  // 6. Serialization round-trip (e.g. for storing as an SST filter
  //    block).
  std::string blob = filter.Serialize();
  auto restored = BloomRF::Deserialize(blob);
  std::printf("serialized %zu bytes, restored=%d\n", blob.size(),
              restored.has_value());

  // 7. The FilterRegistry unifies bloomRF and every baseline behind
  //    one serializable interface: build any backend by name, store
  //    the framed block, reconstruct it without knowing the backend.
  auto& registry = FilterRegistry::Instance();
  std::printf("registered backends:");
  for (const std::string& name : registry.Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");
  std::vector<uint64_t> sorted_keys;
  for (uint64_t k = 0; k < 10'000; ++k) sorted_keys.push_back(k * 37);
  FilterBuildParams build;
  build.bits_per_key = 18.0;
  build.max_range = 1e4;
  auto rosetta = registry.Find("rosetta")->build_from_sorted_keys(
      sorted_keys, build);
  std::string framed = registry.Serialize(*rosetta);  // name | payload
  auto reloaded = registry.Deserialize(framed);
  std::printf("registry round-trip: %s, %zu bytes, range [37, 40] -> %d "
              "(expect 1)\n",
              reloaded->Name().c_str(), framed.size(),
              reloaded->MayContainRange(37, 40));
  return 0;
}

// Time-series scenario (paper Sect. 8 + Fig. 12.D): filter on
// floating-point sensor values using the monotone double encoding.
// "Is there any flux reading in [0.98, 0.99] in this chunk?" without
// scanning the chunk.
//
//   $ ./examples/float_timeseries

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/bloomrf.h"
#include "core/key_codec.h"
#include "core/tuning_advisor.h"
#include "workload/synthetic_kepler.h"

using namespace bloomrf;

int main() {
  // One "chunk" of light-curve data per star.
  KeplerOptions options;
  options.num_stars = 16;
  std::vector<double> flux = GenerateKeplerFlux(options);
  std::printf("generated %zu flux samples\n", flux.size());

  // Value ranges on doubles become enormous code ranges (the paper's
  // "a range of 1 can be 2^61 in the bit representation"), so let the
  // advisor provision an exact layer for very large dyadic ranges.
  // max_range is the *tuning target*; probes beyond it stay correct
  // (no false negatives), they just lean on the exact layer.
  AdvisorParams params;
  params.n = flux.size();
  params.total_bits = 18 * flux.size();
  params.max_range = 1e13;
  BloomRF filter(AdviseConfig(params).config);
  std::printf("config: %s\n", filter.config().DebugString().c_str());
  for (double f : flux) filter.Insert(OrderedFromDouble(f));

  // Transit dips push flux well below baseline; ask for them directly.
  auto probe = [&](double lo, double hi) {
    bool answer = filter.MayContainRange(OrderedFromDouble(lo),
                                         OrderedFromDouble(hi));
    auto it = std::lower_bound(flux.begin(), flux.end(), lo);
    // flux is unsorted; compute truth the slow way for the demo
    bool truth = false;
    for (double f : flux) {
      if (f >= lo && f <= hi) {
        truth = true;
        break;
      }
    }
    (void)it;
    std::printf("  any reading in [%+.4f, %+.4f]? filter=%d truth=%d\n", lo,
                hi, answer, truth);
    return answer;
  };

  std::printf("deep-dip hunting (negative flux excursions):\n");
  probe(-5.0, -2.0);     // far below anything: expect clean negative
  probe(-0.5, -0.4);     // plausible dip region
  probe(-0.05, 0.05);    // near baseline: expect positive
  probe(2.0, 3.0);       // far above: expect clean negative

  std::printf("narrow windows (the paper's 1e-3 ranges):\n");
  double anchor = flux[flux.size() / 2];
  probe(anchor, anchor + 1e-3);          // around a real value
  probe(anchor + 1.0, anchor + 1.0 + 1e-3);  // shifted off the data

  // Negative/positive ordering sanity: phi is monotone, so range
  // semantics carry over exactly.
  std::printf("codec: phi(-0.1) < phi(0.0) < phi(0.1) -> %d\n",
              OrderedFromDouble(-0.1) < OrderedFromDouble(0.0) &&
                  OrderedFromDouble(0.0) < OrderedFromDouble(0.1));
  return 0;
}

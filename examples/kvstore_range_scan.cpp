// KV-store scenario (the paper's RocksDB integration): a mini-LSM
// store with one filter block per SST answers range scans while
// skipping irrelevant files, with a live probe-cost readout.
//
// The filter backend is selected by FilterRegistry name:
//   $ ./examples/kvstore_range_scan                      # bloomRF
//   $ ./examples/kvstore_range_scan --filter=rosetta
//   $ ./examples/kvstore_range_scan list-filters

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "filters/registry.h"
#include "lsm/db.h"
#include "workload/key_generator.h"

using namespace bloomrf;

int main(int argc, char** argv) {
  std::string filter_name = "bloomrf";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter_name = argv[i] + 9;
    } else if (std::strcmp(argv[i], "list-filters") == 0) {
      for (const std::string& name : FilterRegistry::Instance().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
  }
  if (FilterRegistry::Instance().Find(filter_name) == nullptr) {
    std::fprintf(stderr, "unknown filter '%s' (try list-filters)\n",
                 filter_name.c_str());
    return 1;
  }
  std::printf("filter backend: %s\n", filter_name.c_str());

  std::string dir = "/tmp/bloomrf_example_kv";
  std::filesystem::remove_all(dir);

  FilterBuildParams params;
  params.bits_per_key = 20.0;
  params.max_range = 1e6;
  DbOptions options;
  options.dir = dir;
  options.filter_policy = NewRegistryPolicy(filter_name, params);
  options.memtable_bytes = 1 << 20;
  Db db(options);

  // Ingest orders keyed by timestamp-ish ids; several memtable flushes
  // produce multiple L0 SSTs (compaction disabled, as in the paper).
  std::printf("ingesting 100k entries...\n");
  Dataset data = MakeDataset(100'000, Distribution::kUniform, 7);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 128));
  db.Flush();
  std::printf("L0 SST files: %zu, filter memory: %.1f bits/key\n",
              db.num_tables(),
              static_cast<double>(db.filter_memory_bits()) /
                  static_cast<double>(data.keys.size()));

  // A scan over a populated region returns rows.
  uint64_t lo = data.sorted_keys[50'000];
  uint64_t hi = data.sorted_keys[50'020];
  auto rows = db.RangeScan(lo, hi);
  std::printf("scan [%llu, %llu]: %zu rows\n",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi), rows.size());

  // Empty scans are answered by the filters without touching disk.
  db.ResetStats();
  uint64_t skipped = 0;
  for (int i = 0; i < 10'000; ++i) {
    uint64_t anchor = 0x8000000000000000ULL + static_cast<uint64_t>(i) * 131;
    if (!db.RangeMayMatch(anchor, anchor + 1000)) ++skipped;
  }
  const LsmStats& stats = db.stats();
  std::printf("10k empty scans: filter excluded %llu, probes=%llu, "
              "blocks read=%llu\n",
              static_cast<unsigned long long>(skipped),
              static_cast<unsigned long long>(stats.filter_probes),
              static_cast<unsigned long long>(stats.blocks_read));

  std::filesystem::remove_all(dir);
  return 0;
}

// KV-store scenario (the paper's RocksDB integration): a mini-LSM
// store with one filter block per SST answers range scans while
// skipping irrelevant files, with a live probe-cost readout.
//
// The filter backend is selected by FilterRegistry name:
//   $ ./examples/kvstore_range_scan                      # bloomRF
//   $ ./examples/kvstore_range_scan --filter=rosetta
//   $ ./examples/kvstore_range_scan list-filters

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "filters/registry.h"
#include "lsm/db.h"
#include "workload/key_generator.h"

using namespace bloomrf;

int main(int argc, char** argv) {
  std::string filter_name = "bloomrf";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter_name = argv[i] + 9;
    } else if (std::strcmp(argv[i], "list-filters") == 0) {
      for (const std::string& name : FilterRegistry::Instance().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
  }
  if (FilterRegistry::Instance().Find(filter_name) == nullptr) {
    std::fprintf(stderr, "unknown filter '%s' (try list-filters)\n",
                 filter_name.c_str());
    return 1;
  }
  std::printf("filter backend: %s\n", filter_name.c_str());

  std::string dir = "/tmp/bloomrf_example_kv";
  std::filesystem::remove_all(dir);

  FilterBuildParams params;
  params.bits_per_key = 20.0;
  params.max_range = 1e6;
  DbOptions options;
  options.dir = dir;
  options.filter_policy = NewRegistryPolicy(filter_name, params);
  options.memtable_bytes = 1 << 20;
  Db db(options);

  // Ingest orders keyed by timestamp-ish ids; several memtable flushes
  // produce multiple L0 SSTs (compaction disabled, as in the paper).
  std::printf("ingesting 100k entries...\n");
  Dataset data = MakeDataset(100'000, Distribution::kUniform, 7);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 128));
  db.Flush();
  std::printf("L0 SST files: %zu, filter memory: %.1f bits/key\n",
              db.num_tables(),
              static_cast<double>(db.filter_memory_bits()) /
                  static_cast<double>(data.keys.size()));

  // A batched scan: populated regions, a hot region scanned twice (the
  // repeat is served by the block cache), and a sweep of empty ranges
  // the filters exclude without touching disk — all through ONE
  // Db::ScanRange call, so each SST's filter answers the whole batch
  // via its planned MayContainRangeBatch.
  db.ResetStats();
  std::vector<uint64_t> los, his;
  for (size_t q = 0; q < 64; ++q) {
    size_t at = 20'000 + q * 900;
    los.push_back(data.sorted_keys[at]);
    his.push_back(data.sorted_keys[at + 20]);
  }
  los.push_back(los[0]);  // repeat of the first range: cache-served
  his.push_back(his[0]);
  for (int i = 0; i < 10'000; ++i) {
    uint64_t anchor = 0x8000000000000000ULL + static_cast<uint64_t>(i) * 131;
    los.push_back(anchor);
    his.push_back(anchor + 1000);
  }
  auto batches = db.ScanRange(los, his);
  size_t total_rows = 0, empty_ranges = 0;
  for (const auto& rows : batches) {
    total_rows += rows.size();
    empty_ranges += rows.empty();
  }
  const LsmStats& stats = db.stats();
  double hit_rate = stats.block_cache_hits + stats.block_cache_misses > 0
                        ? static_cast<double>(stats.block_cache_hits) /
                              static_cast<double>(stats.block_cache_hits +
                                                  stats.block_cache_misses)
                        : 0.0;
  std::printf("ScanRange batch of %zu ranges: %zu rows, %zu empty\n",
              los.size(), total_rows, empty_ranges);
  std::printf("  filter probes=%llu (negatives=%llu), blocks read=%llu, "
              "cache hits=%llu misses=%llu (hit rate %.2f)\n",
              static_cast<unsigned long long>(stats.filter_probes),
              static_cast<unsigned long long>(stats.filter_negatives),
              static_cast<unsigned long long>(stats.blocks_read),
              static_cast<unsigned long long>(stats.block_cache_hits),
              static_cast<unsigned long long>(stats.block_cache_misses),
              hit_rate);

  std::filesystem::remove_all(dir);
  return 0;
}

// Sharded KV-store scenario: the concurrent big sibling of
// kvstore_range_scan. A ShardedDb hash-partitions keys over N Db
// shards (one memtable + seal/background-flush pipeline + SST set
// each) sharing one block cache and filter policy; several client
// threads Put/Get/MultiGet/ScanRange at once, then the per-shard and
// aggregate cache-hit and filter stats are printed.
//
//   $ ./examples/kvstore_sharded                      # bloomRF, 4 shards
//   $ ./examples/kvstore_sharded --filter=rosetta --shards=8 --clients=8
//   $ ./examples/kvstore_sharded list-filters

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "filters/registry.h"
#include "lsm/sharded_db.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/key_generator.h"

using namespace bloomrf;

int main(int argc, char** argv) {
  std::string filter_name = "bloomrf";
  size_t num_shards = 4;
  size_t num_clients = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      filter_name = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      num_shards = static_cast<size_t>(std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--clients=", 10) == 0) {
      num_clients = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "list-filters") == 0) {
      for (const std::string& name : FilterRegistry::Instance().Names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
  }
  if (FilterRegistry::Instance().Find(filter_name) == nullptr) {
    std::fprintf(stderr, "unknown filter '%s' (try list-filters)\n",
                 filter_name.c_str());
    return 1;
  }
  std::printf("filter backend: %s, %zu shards, %zu client threads\n",
              filter_name.c_str(), num_shards, num_clients);

  std::string dir = "/tmp/bloomrf_example_sharded";
  std::filesystem::remove_all(dir);

  FilterBuildParams params;
  params.bits_per_key = 20.0;
  params.max_range = 1e6;
  ShardedDbOptions options;
  options.dir = dir;
  options.filter_policy = NewRegistryPolicy(filter_name, params);
  options.num_shards = num_shards;
  options.memtable_bytes = 256 << 10;  // several background flushes/shard
  options.block_cache_bytes = 64 << 20;
  // Background leveled compaction with the parallel scheduler: two
  // workers per shard, jobs split into range-partitioned
  // subcompactions (min_bytes 0 so even these small jobs split).
  options.compaction = true;
  options.compaction_threads = 2;
  options.max_subcompactions = 2;
  options.subcompaction_min_bytes = 0;
  options.l0_compaction_trigger = 4;
  options.level_base_bytes = 512 << 10;
  ShardedDb db(options);

  // Phase 1: concurrent ingest. Each client owns a key stripe; writes
  // race through the shards' seal/background-flush pipelines.
  const size_t kKeys = 200'000;
  Dataset data = MakeDataset(kKeys, Distribution::kUniform, 7);
  std::printf("ingesting %zu entries from %zu threads...\n", kKeys,
              num_clients);
  Timer timer;
  {
    std::vector<std::thread> clients;
    for (size_t t = 0; t < num_clients; ++t) {
      clients.emplace_back([&, t] {
        for (size_t i = t; i < data.keys.size(); i += num_clients) {
          db.Put(data.keys[i], MakeValue(i, 128));
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  db.Flush();
  std::printf("  %.2fs; L0 SSTs across shards: %zu, filter memory: %.1f "
              "bits/key\n",
              timer.ElapsedSeconds(), db.num_tables(),
              static_cast<double>(db.filter_memory_bits()) /
                  static_cast<double>(kKeys));

  // Phase 1b: concurrent delete traffic. Each client tombstones a
  // slice of its own stripe (some singly, some via DeleteBatch), so the
  // read phase below runs against a tree where deleted keys must stay
  // dead across every shard's memtable, WAL, and SSTs.
  std::printf("deleting every 5th ingested key from %zu threads...\n",
              num_clients);
  std::atomic<uint64_t> deletes{0};
  timer.Restart();
  {
    std::vector<std::thread> clients;
    for (size_t t = 0; t < num_clients; ++t) {
      clients.emplace_back([&, t] {
        std::vector<uint64_t> batch;
        for (size_t i = t * 5; i < data.keys.size(); i += num_clients * 5) {
          if (i % 2 == 0) {
            db.Delete(data.keys[i]);
          } else {
            batch.push_back(data.keys[i]);
          }
          ++deletes;
        }
        db.DeleteBatch(batch);
      });
    }
    for (auto& c : clients) c.join();
  }
  db.Flush();
  {
    LsmStats after = db.TotalStats();
    std::printf("  %.2fs; %llu deletes -> tombstones written=%llu "
                "live=%llu dropped=%llu\n",
                timer.ElapsedSeconds(),
                static_cast<unsigned long long>(deletes.load()),
                static_cast<unsigned long long>(after.tombstones_written.load()),
                static_cast<unsigned long long>(after.tombstones_live.load()),
                static_cast<unsigned long long>(after.tombstones_dropped.load()));
  }

  // Drain the compaction pipeline, then show what it did per level:
  // bytes in/out and wall time by output level, plus how many jobs
  // were split into range-partitioned subcompactions.
  db.WaitForCompaction();
  {
    LsmStats s = db.TotalStats();
    std::printf("compaction: %llu jobs (%llu subcompactions) across %zu "
                "shards\n",
                static_cast<unsigned long long>(s.compactions.load()),
                static_cast<unsigned long long>(s.subcompactions_run.load()),
                db.num_shards());
    for (size_t l = 0; l < LsmStats::kStatsLevels; ++l) {
      uint64_t in = s.compaction_bytes_read_level[l].load();
      uint64_t out = s.compaction_bytes_written_level[l].load();
      uint64_t us = s.compaction_micros_level[l].load();
      if (in + out == 0) continue;
      std::printf("  ->L%zu%s read %6.1f MiB, wrote %6.1f MiB, %8.1f ms\n",
                  l, l + 1 == LsmStats::kStatsLevels ? "+" : " ",
                  static_cast<double>(in) / (1 << 20),
                  static_cast<double>(out) / (1 << 20),
                  static_cast<double>(us) / 1000.0);
    }
  }

  // Phase 2: concurrent mixed reads. Every client issues MultiGet
  // batches (half hits / half misses the filters exclude) and ScanRange
  // batches over populated and empty regions.
  db.ResetStats();
  std::atomic<uint64_t> gets{0}, hits{0}, scans{0}, rows_total{0};
  timer.Restart();
  {
    std::vector<std::thread> clients;
    for (size_t t = 0; t < num_clients; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(0x5eed + t);
        std::vector<uint64_t> probe(1024), los(64), his(64);
        for (int round = 0; round < 20; ++round) {
          for (auto& q : probe) {
            q = (rng.Next() & 1) ? data.keys[rng.Uniform(kKeys)] : rng.Next();
          }
          auto answers = db.MultiGet(probe);
          uint64_t local_hits = 0;
          for (const auto& a : answers) local_hits += a.has_value();
          gets += probe.size();
          hits += local_hits;

          for (size_t q = 0; q < los.size(); ++q) {
            if (q % 2 == 0) {
              size_t at = rng.Uniform(kKeys - 40);
              los[q] = data.sorted_keys[at];
              his[q] = data.sorted_keys[at + 20];
            } else {
              uint64_t anchor = 0x8000000000000000ULL + rng.Next() % (1 << 20);
              los[q] = anchor;
              his[q] = anchor + 1000;
            }
          }
          auto batches = db.ScanRange(los, his, 64);
          uint64_t local_rows = 0;
          for (const auto& rows : batches) local_rows += rows.size();
          scans += los.size();
          rows_total += local_rows;
        }
      });
    }
    for (auto& c : clients) c.join();
  }
  double seconds = timer.ElapsedSeconds();
  std::printf("mixed read phase: %.2fs — %llu point probes (%llu found), "
              "%llu range scans (%llu rows)\n",
              seconds, static_cast<unsigned long long>(gets.load()),
              static_cast<unsigned long long>(hits.load()),
              static_cast<unsigned long long>(scans.load()),
              static_cast<unsigned long long>(rows_total.load()));

  // Per-shard and aggregate stats: the shards share one cache, so the
  // aggregate hit rate reflects cross-shard residency.
  auto print_stats = [](const char* label, const LsmStats& s, size_t tables) {
    uint64_t probes = s.filter_probes.load();
    uint64_t negatives = s.filter_negatives.load();
    uint64_t ch = s.block_cache_hits.load(), cm = s.block_cache_misses.load();
    std::printf("  %-10s tables=%-4zu filter probes=%-9llu negatives=%-9llu "
                "cache hits=%-8llu misses=%-8llu hit rate %.2f\n",
                label, tables, static_cast<unsigned long long>(probes),
                static_cast<unsigned long long>(negatives),
                static_cast<unsigned long long>(ch),
                static_cast<unsigned long long>(cm),
                ch + cm > 0 ? static_cast<double>(ch) /
                                  static_cast<double>(ch + cm)
                            : 0.0);
  };
  std::printf("per-shard stats:\n");
  for (size_t s = 0; s < db.num_shards(); ++s) {
    std::string label = "shard " + std::to_string(s);
    print_stats(label.c_str(), db.shard(s).stats(), db.shard(s).num_tables());
  }
  LsmStats total = db.TotalStats();
  print_stats("aggregate", total, db.num_tables());

  // Filter outcome accounting: of the probes the filters let through,
  // how many actually found data? A false positive is a probe the
  // filter allowed but the data blocks rejected — the wasted I/O the
  // filter exists to prevent, split per level because deep levels
  // field most of the probes in a leveled tree.
  std::printf("filter outcomes by level (allowed-but-empty vs excluded):\n");
  for (size_t l = 0; l < LsmStats::kStatsLevels; ++l) {
    uint64_t fp = total.filter_false_positives[l].load();
    uint64_t tn = total.filter_true_negatives[l].load();
    if (fp + tn == 0) continue;
    std::printf("  L%zu%s false positives=%-9llu true negatives=%-9llu "
                "measured fpr %.4f\n",
                l, l + 1 == LsmStats::kStatsLevels ? "+" : " ",
                static_cast<unsigned long long>(fp),
                static_cast<unsigned long long>(tn),
                static_cast<double>(fp) / static_cast<double>(fp + tn));
  }
  std::printf("  overall measured fpr %.4f (the planner feeds this back "
              "into backend choice)\n",
              total.measured_fpr());

  std::filesystem::remove_all(dir);
  return 0;
}

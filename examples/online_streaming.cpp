// Online/streaming scenario (paper Problem 2 + Fig. 12.A/B): bloomRF
// serves range queries *while* a writer thread streams new keys in —
// the capability offline filters (SuRF, tuned Rosetta) lack.
//
//   $ ./examples/online_streaming

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/bloomrf.h"
#include "util/random.h"
#include "util/timer.h"

using namespace bloomrf;

int main() {
  constexpr uint64_t kStreamSize = 4'000'000;
  BloomRF filter(BloomRFConfig::Basic(kStreamSize, 16.0));

  std::atomic<uint64_t> inserted{0};
  std::atomic<bool> done{false};

  // Writer: streams sensor events (monotone-ish timestamps with
  // jitter), no pre-collected dataset, no build phase.
  std::thread writer([&] {
    Rng rng(1);
    uint64_t ts = uint64_t{1} << 40;
    for (uint64_t i = 0; i < kStreamSize; ++i) {
      ts += 1 + rng.Uniform(1000);
      filter.Insert(ts);
      inserted.store(i + 1, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  // Reader: concurrently asks "anything in the last-ish window?"
  uint64_t probes = 0, positives = 0;
  Rng rng(2);
  Timer timer;
  while (!done.load(std::memory_order_acquire)) {
    uint64_t anchor = (uint64_t{1} << 40) + rng.Uniform(uint64_t{1} << 32);
    if (filter.MayContainRange(anchor, anchor + 4096)) ++positives;
    ++probes;
  }
  double seconds = timer.ElapsedSeconds();
  writer.join();

  std::printf("writer streamed %llu keys; reader issued %llu range probes "
              "concurrently\n",
              static_cast<unsigned long long>(inserted.load()),
              static_cast<unsigned long long>(probes));
  std::printf("reader throughput: %.2f M probes/s, positives: %llu\n",
              probes / seconds / 1e6,
              static_cast<unsigned long long>(positives));

  // After the stream, verify a few invariants.
  std::printf("filter is immediately queryable: full-window probe = %d "
              "(expect 1)\n",
              filter.MayContainRange(uint64_t{1} << 40, UINT64_MAX));
  return 0;
}

// Multi-attribute scenario (paper Sect. 8 + Fig. 12.F): a sky-survey
// catalog filtered on (Run, ObjectID) simultaneously. One dual-
// attribute bloomRF answers conjunctive predicates like
//   Run < 300 AND ObjectID = <id>
// with a single range probe, beating two separate filters.
//
//   $ ./examples/multi_attribute_astronomy

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/multi_attribute.h"
#include "workload/synthetic_sdss.h"

using namespace bloomrf;

int main() {
  SdssOptions options;
  options.num_rows = 200'000;
  std::vector<SdssRow> rows = GenerateSdssRows(options);
  std::printf("catalog: %zu (ObjectID, Run) rows\n", rows.size());

  // Shift Run into high bits so the 32-bit precision reduction keeps
  // all of its information.
  auto run_key = [](uint64_t run) { return run << 40; };

  MultiAttributeBloomRF filter(
      BloomRFConfig::Basic(rows.size() * 2, /*bits_per_key=*/18.0));
  for (const SdssRow& row : rows) {
    filter.Insert(run_key(row.run), row.object_id);
  }
  std::printf("filter memory: %.1f bits per row\n",
              static_cast<double>(filter.MemoryBits()) /
                  static_cast<double>(rows.size()));

  // Query 1: an object we know sits in an early run.
  const SdssRow* early = nullptr;
  for (const SdssRow& row : rows) {
    if (row.run < 300) {
      early = &row;
      break;
    }
  }
  if (early != nullptr) {
    std::printf("Run<300 AND ObjectID=%llu -> %d (expect 1; run=%llu)\n",
                static_cast<unsigned long long>(early->object_id),
                filter.MayMatchRangePoint(run_key(0), run_key(299),
                                          early->object_id),
                static_cast<unsigned long long>(early->run));
  }

  // Query 2: a fabricated ObjectID that is not in the catalog at all.
  uint64_t ghost = 0x1234567890abcdefULL;
  std::printf("Run<300 AND ObjectID=ghost -> %d (expect 0 w.h.p.)\n",
              filter.MayMatchRangePoint(run_key(0), run_key(299), ghost));

  // Query 3: ObjectID range for a fixed Run (mirrored arrangement).
  const SdssRow& sample = rows[rows.size() / 2];
  std::printf("Run=%llu AND ObjectID in [id-1e6, id+1e6] -> %d (expect 1)\n",
              static_cast<unsigned long long>(sample.run),
              filter.MayMatchPointRange(run_key(sample.run),
                                        sample.object_id - 1'000'000,
                                        sample.object_id + 1'000'000));

  // Query 4: exact pair.
  std::printf("Run=%llu AND ObjectID=%llu -> %d (expect 1)\n",
              static_cast<unsigned long long>(sample.run),
              static_cast<unsigned long long>(sample.object_id),
              filter.MayMatchPointPoint(run_key(sample.run),
                                        sample.object_id));
  return 0;
}

// Tuning-advisor tour (paper Sect. 7): shows how the advisor's choice
// of delta ladder, exact level, replica counts and segment split
// shifts with the memory budget and the target query-range size, and
// reports the analytic FPR forecast for each configuration — the
// paper's "Figure C" advisor example as a walk-through.
//
//   $ ./examples/tuning_advisor_tour

#include <cstdio>

#include "core/fpr_model.h"
#include "core/tuning_advisor.h"

using namespace bloomrf;

int main() {
  const uint64_t n = 50'000'000;  // the paper's 50M-key running example

  std::printf("advisor configurations for n = 50M keys, d = 64\n\n");
  std::printf("%-6s %-10s %-60s %10s %10s\n", "bpk", "max range", "config",
              "rangeFPR", "pointFPR");
  for (double bpk : {10.0, 14.0, 16.0, 22.0}) {
    for (double range : {64.0, 1e6, 1e10}) {
      AdvisorParams params;
      params.n = n;
      params.total_bits = static_cast<uint64_t>(bpk * n);
      params.max_range = range;
      AdvisorResult result = AdviseConfig(params);
      std::printf("%-6.0f %-10.0e %-60s %10.4f %10.4f\n", bpk, range,
                  result.config.DebugString().c_str(),
                  result.expected_range_fpr, result.expected_point_fpr);
    }
  }

  // The paper's Sect. 7 worked example: 14 bits/key -> exact level 36,
  // delta ladder (7,7,7,7,4,2,2)-ish, replicated top hash.
  std::printf("\npaper's worked example (n=50M, 14 bits/key, R=1e10):\n");
  AdvisorParams params;
  params.n = n;
  params.total_bits = 14 * n;
  params.max_range = 1e10;
  AdvisorResult result = AdviseConfig(params);
  std::printf("  %s\n", result.config.DebugString().c_str());
  std::printf("  exact level %u (paper: ~36), layers %zu\n",
              result.config.TopLevel(), result.config.num_layers());

  // Per-level FPR forecast of the chosen configuration.
  FprModelResult model = EvaluateFprModel(result.config, n);
  std::printf("\nper-level FPR forecast (levels 0..%u):\n  ",
              result.config.TopLevel());
  for (uint32_t l = 0; l <= result.config.TopLevel(); l += 4) {
    std::printf("l%u=%.3f ", l, model.fpr_per_level[l]);
  }
  std::printf("\n");
  return 0;
}

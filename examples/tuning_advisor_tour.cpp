// Tuning-advisor tour (paper Sect. 7): shows how the advisor's choice
// of delta ladder, exact level, replica counts and segment split
// shifts with the memory budget and the target query-range size, and
// reports the analytic FPR forecast for each configuration — the
// paper's "Figure C" advisor example as a walk-through.
//
// The closing act runs the advisor live inside the LSM engine: an
// AdaptiveFilterPolicy Db observes its own query stream through the
// workload sampler, plans a backend at flush, and re-tunes the tree
// via CompactAll when the workload shifts.
//
//   $ ./examples/tuning_advisor_tour

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/fpr_model.h"
#include "core/tuning_advisor.h"
#include "lsm/db.h"
#include "util/random.h"

using namespace bloomrf;

int main() {
  const uint64_t n = 50'000'000;  // the paper's 50M-key running example

  std::printf("advisor configurations for n = 50M keys, d = 64\n\n");
  std::printf("%-6s %-10s %-60s %10s %10s\n", "bpk", "max range", "config",
              "rangeFPR", "pointFPR");
  for (double bpk : {10.0, 14.0, 16.0, 22.0}) {
    for (double range : {64.0, 1e6, 1e10}) {
      AdvisorParams params;
      params.n = n;
      params.total_bits = static_cast<uint64_t>(bpk * n);
      params.max_range = range;
      AdvisorResult result = AdviseConfig(params);
      std::printf("%-6.0f %-10.0e %-60s %10.4f %10.4f\n", bpk, range,
                  result.config.DebugString().c_str(),
                  result.expected_range_fpr, result.expected_point_fpr);
    }
  }

  // The paper's Sect. 7 worked example: 14 bits/key -> exact level 36,
  // delta ladder (7,7,7,7,4,2,2)-ish, replicated top hash.
  std::printf("\npaper's worked example (n=50M, 14 bits/key, R=1e10):\n");
  AdvisorParams params;
  params.n = n;
  params.total_bits = 14 * n;
  params.max_range = 1e10;
  AdvisorResult result = AdviseConfig(params);
  std::printf("  %s\n", result.config.DebugString().c_str());
  std::printf("  exact level %u (paper: ~36), layers %zu\n",
              result.config.TopLevel(), result.config.num_layers());

  // Per-level FPR forecast of the chosen configuration.
  FprModelResult model = EvaluateFprModel(result.config, n);
  std::printf("\nper-level FPR forecast (levels 0..%u):\n  ",
              result.config.TopLevel());
  for (uint32_t l = 0; l <= result.config.TopLevel(); l += 4) {
    std::printf("l%u=%.3f ", l, model.fpr_per_level[l]);
  }
  std::printf("\n");

  // ---- The advisor in the loop: live workload-adaptive filtering ----
  // A measured range-width histogram replaces the scalar max_range
  // guess: AdvisorParams::range_weights carries the sampler's log2
  // buckets, and the planner scores every registered backend against
  // the observed point/range mix.
  std::printf("\nlive tuning loop (AdaptiveFilterPolicy inside the Db):\n");
  const std::string dir = "/tmp/bloomrf_tour_adaptive";
  std::filesystem::remove_all(dir);
  {
    auto policy = NewAdaptiveFilterPolicy({.bits_per_key = 16.0});
    AdaptiveFilterPolicy* adaptive = policy.get();
    DbOptions options;
    options.dir = dir;
    options.filter_policy = std::move(policy);
    options.memtable_bytes = 8 << 20;
    options.background_flush = false;
    options.wal = false;
    Db db(options);  // the policy wires a workload sampler automatically
    Rng rng(0x70ad);
    for (int i = 0; i < 50'000; ++i) db.Put(rng.Next(), "v");

    // Act 1: point-only traffic, then flush. The planner sees a
    // point-pure histogram and picks a point-optimal backend.
    std::string value;
    Rng query(0x70ae);
    for (int q = 0; q < 20'000; ++q) db.Get(query.Next(), &value);
    db.Flush();
    FilterPlan plan = adaptive->LastPlan();
    std::printf("  after point-only phase:  %s\n", plan.rationale.c_str());

    // Act 2: the workload shifts to wide ranges. Reset the sampler's
    // memory of the old mix, observe the new one, and re-tune the
    // whole tree with a manual full compaction.
    db.workload_sampler()->Reset();
    for (int q = 0; q < 20'000; ++q) {
      uint64_t lo = query.Next() >> 1;
      db.RangeMayMatch(lo, lo + (uint64_t{1} << 28));
    }
    db.CompactAll();
    plan = adaptive->LastPlan();
    std::printf("  after wide-range shift:  %s\n", plan.rationale.c_str());
    std::printf("  (planned builds %llu, fallback builds %llu)\n",
                static_cast<unsigned long long>(adaptive->planned_builds()),
                static_cast<unsigned long long>(adaptive->fallback_builds()));
  }
  std::filesystem::remove_all(dir);
  return 0;
}

// Figure 12.D: floating-point support. Synthetic Kepler flux samples
// (stand-in for NASA [33], see DESIGN.md) are inserted through the
// monotone double encoding; range queries of width 1e-3 measure FPR
// and probe throughput across space budgets.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "core/key_codec.h"
#include "core/tuning_advisor.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/synthetic_kepler.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 200'000, 50'000);
  Header("Fig. 12.D", "floats: synthetic Kepler flux, range width 1e-3",
         scale);

  KeplerOptions kopt;
  kopt.num_stars = std::max<uint64_t>(1, scale.keys / kopt.samples_per_star);
  std::vector<double> flux = GenerateKeplerFlux(kopt);
  std::sort(flux.begin(), flux.end());
  flux.erase(std::unique(flux.begin(), flux.end()), flux.end());

  std::printf("%-8s %-12s %-14s %-12s\n", "bpk", "FPR", "Mlookups/s",
              "config");
  for (double bpk : {10.0, 14.0, 18.0, 22.0}) {
    AdvisorParams params;
    params.n = flux.size();
    params.total_bits = static_cast<uint64_t>(bpk * flux.size());
    // Range 1e-3 around ~1.0 doubles spans ~2^40 codes (the paper's
    // "for doubles a range of 1 can be 2^61" point).
    params.max_range = 1e12;
    BloomRF filter(AdviseConfig(params).config);
    for (double f : flux) filter.Insert(OrderedFromDouble(f));

    Rng rng(0x12d);
    uint64_t fp = 0, empties = 0, queries = 0;
    Timer timer;
    while (queries < scale.queries) {
      // Anchor near the data distribution (flux values +- noise).
      double anchor = flux[rng.Uniform(flux.size())] +
                      (rng.NextDouble() - 0.5) * 0.1;
      double lo = anchor, hi = anchor + 1e-3;
      ++queries;
      bool answer = filter.MayContainRange(OrderedFromDouble(lo),
                                           OrderedFromDouble(hi));
      auto it = std::lower_bound(flux.begin(), flux.end(), lo);
      bool truth = it != flux.end() && *it <= hi;
      if (!truth) {
        ++empties;
        if (answer) ++fp;
      }
    }
    double seconds = timer.ElapsedSeconds();
    std::printf("%-8.0f %-12.4f %-14.2f %s\n", bpk,
                empties ? static_cast<double>(fp) / empties : 0.0,
                Mops(queries, seconds), filter.config().DebugString().c_str());
  }
  std::printf("\nShape check (paper): avg FPR ~0.18 over 10-22 bits/key "
              "and ~4M lookups/s;\nfloat ranges are hard because 1e-3 in "
              "value space is a huge dyadic range in code space.\n");
  return 0;
}

// Figure 11: holistic standalone comparison. For each combination of
// data distribution x workload distribution x number of keys x space
// budget x query range, reports each filter's empty-range FPR and the
// winner — the color/symbol grid of the paper rendered as rows.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/standalone_bench_util.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 100'000, 4'000);
  Header("Fig. 11", "standalone grid: best filter per setting", scale);

  std::vector<uint64_t> key_counts = {10'000, scale.keys};
  std::vector<double> budgets = {10, 14, 18, 22};
  std::vector<uint64_t> ranges = {32, 10'000, 100'000'000ULL,
                                  10'000'000'000ULL};

  std::printf("%-9s %-9s %-9s %-5s %-13s %-10s %-10s %-10s  %s\n", "data",
              "workload", "keys", "bpk", "range", "bloomRF", "Rosetta",
              "SuRF", "winner");
  for (Distribution data_dist :
       {Distribution::kUniform, Distribution::kNormal,
        Distribution::kZipfian}) {
    for (Distribution query_dist :
         {Distribution::kUniform, Distribution::kNormal,
          Distribution::kZipfian}) {
      // The paper varies both; keep the full cross at reduced sizes.
      for (uint64_t n : key_counts) {
        Dataset data = MakeDataset(n, data_dist, 0x11d + n);
        for (double bpk : budgets) {
          for (uint64_t range : ranges) {
            StandaloneContenders c = BuildContenders(data, bpk, range);
            QueryWorkload workload = MakeQueryWorkload(
                data, scale.queries, range, query_dist, 0x9e + range);
            auto ours = MeasureRangeFpr(
                workload,
                [&](uint64_t lo, uint64_t hi) {
                  return c.bloomrf->MayContainRange(lo, hi);
                },
                c.bloomrf->MemoryBits(), n);
            auto rosetta = MeasureRangeFpr(
                workload,
                [&](uint64_t lo, uint64_t hi) {
                  return c.rosetta->MayContainRange(lo, hi);
                },
                c.rosetta->MemoryBits(), n);
            auto surf = MeasureRangeFpr(
                workload,
                [&](uint64_t lo, uint64_t hi) {
                  return c.surf->MayContainRange(lo, hi);
                },
                c.surf->MemoryBits(), n);
            // SuRF's size is structural; when it exceeds the row's
            // budget it is ineligible (the paper likewise reports
            // settings where no SuRF variant fits).
            bool surf_fits = surf.bits_per_key <= bpk + 2.0;
            const char* winner = "bloomRF";
            double best = ours.fpr;
            if (rosetta.fpr < best) {
              best = rosetta.fpr;
              winner = "Rosetta";
            }
            if (surf_fits && surf.fpr < best) winner = "SuRF";
            std::printf(
                "%-9s %-9s %-9llu %-5.0f %-13llu %-10.4f %-10.4f %-10.4f  "
                "%s%s\n",
                DistributionName(data_dist), DistributionName(query_dist),
                static_cast<unsigned long long>(n), bpk,
                static_cast<unsigned long long>(range), ours.fpr,
                rosetta.fpr, surf.fpr, winner,
                surf_fits ? "" : " (SuRF over budget)");
          }
        }
      }
    }
  }
  std::printf("\nShape check (paper Fig. 11 / Fig. 1): Rosetta wins very "
              "small ranges at >=16bpk;\nSuRF wins very large ranges at "
              ">=14bpk and many keys; bloomRF wins the broad middle\nand "
              "stays robust across data/workload skew.\n");
  return 0;
}

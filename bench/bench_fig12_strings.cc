// Figure 12 strings panel: bloomRF's 7-byte-prefix + tail-hash string
// coding vs SuRF (real suffixes) on a hierarchical string dataset —
// point and short-lexicographic-range FPR across space budgets.

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/string_bloomrf.h"
#include "filters/surf/surf.h"
#include "util/random.h"
#include "workload/synthetic_strings.h"

using namespace bloomrf;
using namespace bloomrf::bench;

namespace {

/// Diverse dataset: random 12-char identifiers — 7-byte prefixes are
/// unique, the regime bloomRF's string coding is designed for.
std::vector<std::string> DiverseKeys(uint64_t n, uint64_t seed) {
  Rng rng(seed);
  std::set<std::string> keys;
  const char* alphabet = "abcdefghijklmnopqrstuvwxyz0123456789";
  while (keys.size() < n) {
    std::string k;
    for (int i = 0; i < 12; ++i) k.push_back(alphabet[rng.Uniform(36)]);
    keys.insert(k);
  }
  return {keys.begin(), keys.end()};
}

void RunDataset(const char* name, const std::vector<std::string>& keys,
                uint64_t num_queries);

}  // namespace

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 100'000, 20'000);
  Header("Fig. 12 (strings)", "string keys: bloomRF vs SuRF", scale);

  StringDatasetOptions options;
  options.num_keys = scale.keys;
  RunDataset("diverse 12-char ids", DiverseKeys(scale.keys, 0xd1),
             scale.queries);
  RunDataset("hierarchical paths (deep shared prefixes)",
             GenerateStringKeys(options), scale.queries);
  std::printf("\nShape check (paper Fig. 12 strings): SuRF's trie is exact "
              "on string structure\nand robust everywhere; bloomRF is "
              "competitive when 7-byte prefixes are diverse\nand degrades "
              "on deep shared prefixes (ranges inside one prefix collide) — "
              "the\ntrade-off of its SuRF-Hash-style coding.\n");
  return 0;
}

namespace {

void RunDataset(const char* name, const std::vector<std::string>& keys,
                uint64_t num_queries) {
  std::set<std::string> keyset(keys.begin(), keys.end());
  std::printf("\n[%s] %zu keys\n", name, keys.size());

  // Miss queries: mutate existing keys' tails.
  Rng rng(0x57);
  std::vector<std::string> misses;
  while (misses.size() < num_queries) {
    std::string candidate = keys[rng.Uniform(keys.size())];
    candidate[candidate.size() - 1 - rng.Uniform(5)] =
        static_cast<char>('a' + rng.Uniform(26));
    if (!keyset.count(candidate)) misses.push_back(candidate);
  }

  std::printf("%-6s %-22s %-22s %-14s\n", "bpk", "point FPR (bRF|SuRF)",
              "range FPR (bRF|SuRF)", "SuRF bits/key");
  for (double bpk : {10.0, 14.0, 18.0, 22.0}) {
    StringBloomRF ours(BloomRFConfig::Basic(keys.size(), bpk));
    for (const std::string& k : keys) ours.Insert(k);
    Surf::Options sopt;
    sopt.suffix_type = SurfSuffixType::kReal;
    sopt.suffix_bits = bpk <= 12 ? 4 : 8;
    Surf surf = Surf::BuildFromStrings(keys, sopt);

    uint64_t our_fp = 0, surf_fp = 0;
    for (const std::string& q : misses) {
      if (ours.MayContain(q)) ++our_fp;
      if (surf.MayContainString(q)) ++surf_fp;
    }
    // Short lexicographic ranges at random anchors: mutate a key in
    // the *middle* so the anchor shares only a short prefix with the
    // data, then span a few trailing characters.
    uint64_t our_rfp = 0, surf_rfp = 0, empties = 0;
    for (uint64_t i = 0; i < num_queries; ++i) {
      std::string lo = keys[rng.Uniform(keys.size())];
      size_t pos = lo.size() / 2 + rng.Uniform(lo.size() / 4);
      lo[pos] = static_cast<char>('A' + rng.Uniform(26));  // uppercase: off-alphabet
      std::string hi = lo + "zzzz";
      auto it = keyset.lower_bound(lo);
      if (it != keyset.end() && *it <= hi) continue;
      ++empties;
      if (ours.MayContainRange(lo, hi)) ++our_rfp;
      if (surf.MayContainStringRange(lo, hi)) ++surf_rfp;
    }
    std::printf("%-6.0f %8.4f | %8.4f    %8.4f | %8.4f    %10.1f\n", bpk,
                static_cast<double>(our_fp) / misses.size(),
                static_cast<double>(surf_fp) / misses.size(),
                empties ? static_cast<double>(our_rfp) / empties : 0.0,
                empties ? static_cast<double>(surf_rfp) / empties : 0.0,
                static_cast<double>(surf.MemoryBits()) /
                    static_cast<double>(keys.size()));
  }
}

}  // namespace

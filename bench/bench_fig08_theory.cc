// Figure 8: space/FPR comparison of bloomRF's model, Rosetta's
// first-cut model and the theoretical lower bounds ([7], [20]) for
// point queries (A) and range queries of size R = 16/32/64 (B), d=64.
//
// Purely analytic — regenerates the two panels as tables.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/fpr_model.h"

using namespace bloomrf;

int main(int argc, char** argv) {
  bench::Scale scale = bench::ParseScale(argc, argv);
  bench::Header("Fig. 8", "theoretical space/FPR comparison (d=64)", scale);
  const uint64_t n = 1'000'000;

  std::printf("\n(A) Point queries: bits/key to reach FPR eps\n");
  std::printf("%-10s %-12s %-12s %-12s\n", "eps", "bloomRF", "Rosetta(F)",
              "LowerBound");
  for (double eps : {0.001, 0.002, 0.005, 0.010, 0.015, 0.020, 0.030}) {
    // For points, both models reduce to Bloom-style space; bloomRF's k
    // is fixed by the domain, so invert its point formula numerically.
    double lo = 1, hi = 80;
    for (int iter = 0; iter < 50; ++iter) {
      double mid = (lo + hi) / 2;
      uint32_t k = (64 - 20 + 6) / 7;
      double fpr = BasicPointFpr(n, static_cast<uint64_t>(mid * n), k);
      (fpr > eps ? lo : hi) = mid;
    }
    double rosetta = std::log2(std::exp(1.0)) * std::log2(1.0 / eps);
    std::printf("%-10.4f %-12.2f %-12.2f %-12.2f\n", eps, hi, rosetta,
                PointLowerBoundBitsPerKey(eps));
  }

  std::printf("\n(B) Range queries of size R: bits/key to reach FPR eps\n");
  std::printf("%-6s %-10s %-12s %-12s %-12s\n", "R", "eps", "bloomRF",
              "Rosetta(F)", "LowerBound");
  for (double r : {16.0, 32.0, 64.0}) {
    for (double eps : {0.005, 0.010, 0.020, 0.030}) {
      std::printf("%-6.0f %-10.3f %-12.2f %-12.2f %-12.2f\n", r, eps,
                  BloomRFBitsPerKey(r, eps, n, 64),
                  RosettaBitsPerKey(r, eps),
                  RangeLowerBoundBitsPerKey(r, eps, n, 64));
    }
  }
  std::printf("\nShape check (paper): Rosetta sits a near-constant factor "
              "above the lower bound;\nbloomRF improves over Rosetta and "
              "approaches the bound as R (hence delta) grows.\n");
  return 0;
}

// Concurrent LSM engine throughput: threads x shards scaling for
// Get / MultiGet / ScanRange on the ShardedDb, against the plain
// single-threaded Db scalar loops as baseline — plus the write path:
// Put-only and 50/50 mixed Put/Get cells, and the WAL overhead rows.
//
// For every (shards, threads) cell, `threads` client threads hammer
// one ShardedDb with a fixed per-thread op budget:
//  - Get: scalar point lookups (50% present / 50% absent),
//  - MultiGet: the same mix in batches of 1024 (planned filter probes,
//    block-cache-grouped block reads, per-shard parallel fan-out),
//  - ScanRange: batches of 64 ranges, half populated / half empty,
//  - Put: random-key inserts into a fresh engine (WAL off, so the cell
//    measures the memtable/seal path alone),
//  - mixed: alternating Get (hitting keys the Put phase wrote) and Put
//    on the populated engine — the 50/50 read-write mix,
//  - Delete: tombstoning every key the Put phase wrote (delete-heavy),
//  - 25/25/50 p/d/g: puts, deletes and point reads interleaved over
//    the tombstone-churned store
// and the aggregate Mops (queries/s for scans) is reported. The
// baseline rows drive a plain Db with the same workload from one
// thread, so the 1-shard/1-thread ShardedDb cell doubles as the
// "sharding layer overhead" check.
//
// The `wal` section re-times Put-only at (1 shard, 1 thread) and
// (max shards, max threads) with the group-commit WAL on
// (wal_fsync=false): put_ratio = walled/unwalled throughput is the
// logging overhead the acceptance gate bounds (>= 0.75).
//
// Writes BENCH_lsm_concurrent.json (override with --out=PATH),
// including `hardware_concurrency` (scaling is bounded by the host's
// cores; the committed file records the bench host) and conservative
// `guard` floors — 0.8x of this run's measured 8-thread/1-thread
// scaling ratios and of the 1-shard/plain-Db throughput ratio — that
// scripts/perf_guard.py compares a CI smoke run against. --smoke
// shrinks the store and the sweep for CI.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "lsm/db.h"
#include "lsm/sharded_db.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

using bench::Mops;

constexpr size_t kMultiGetBatch = 1024;
constexpr size_t kScanBatch = 64;
constexpr size_t kScanLimit = 32;

struct Workload {
  Dataset data;
  uint64_t point_ops_per_thread = 0;
  uint64_t scan_queries_per_thread = 0;
  uint64_t put_ops_per_thread = 0;
};

constexpr std::string_view kPutValue = "0123456789abcdef";

// Per-thread query streams: seeded per thread id so every cell of the
// sweep probes identical sequences regardless of interleaving.
std::vector<uint64_t> MakePointMix(const Workload& w, uint64_t tid) {
  Rng rng(0x90117 + tid);
  std::vector<uint64_t> out;
  out.reserve(w.point_ops_per_thread);
  for (uint64_t q = 0; q < w.point_ops_per_thread; ++q) {
    out.push_back((q & 1) ? w.data.keys[rng.Uniform(w.data.keys.size())]
                          : rng.Next());
  }
  return out;
}

void MakeRangeMix(const Workload& w, uint64_t tid, std::vector<uint64_t>* los,
                  std::vector<uint64_t>* his) {
  Rng rng(0x5ca9 + tid);
  los->clear();
  his->clear();
  for (uint64_t q = 0; q < w.scan_queries_per_thread; ++q) {
    if (q & 1) {
      size_t at = rng.Uniform(w.data.sorted_keys.size() - 24);
      los->push_back(w.data.sorted_keys[at]);
      his->push_back(w.data.sorted_keys[at + 12]);
    } else {
      uint64_t anchor = 0x8000000000000000ULL + (rng.Next() & 0xffffff);
      los->push_back(anchor);
      his->push_back(anchor + 512);
    }
  }
}

struct CellResult {
  size_t shards = 0;
  size_t threads = 0;
  double get_mops = 0;
  double multiget_mops = 0;
  double scanrange_qps = 0;  // range queries per second
};

// Runs `threads` client threads, each calling fn(tid), and returns the
// wall seconds of the slowest.
template <typename Fn>
double TimedThreads(size_t threads, Fn fn) {
  Timer timer;
  std::vector<std::thread> workers;
  for (size_t t = 1; t < threads; ++t) workers.emplace_back(fn, t);
  fn(0);
  for (auto& th : workers) th.join();
  return timer.ElapsedSeconds();
}

template <typename Engine>
CellResult BenchEngine(Engine* db, const Workload& w, size_t shards,
                       size_t threads) {
  CellResult cell;
  cell.shards = shards;
  cell.threads = threads;

  // Pre-generate every thread's streams outside the timed region.
  std::vector<std::vector<uint64_t>> point(threads);
  std::vector<std::vector<uint64_t>> los(threads), his(threads);
  for (size_t t = 0; t < threads; ++t) {
    point[t] = MakePointMix(w, t);
    MakeRangeMix(w, t, &los[t], &his[t]);
  }

  // Warm the block cache so every cell measures the same residency.
  { auto warm = db->MultiGet(point[0]); (void)warm; }

  // Best of two timed runs per phase: the first run doubles as warmup
  // and the max trims one-sided scheduler noise (same convention as
  // bench_batch_probe).
  std::atomic<uint64_t> sink{0};
  for (int run = 0; run < 2; ++run) {
    double secs = TimedThreads(threads, [&](size_t t) {
      uint64_t hits = 0;
      std::string value;
      for (uint64_t q : point[t]) hits += db->Get(q, &value);
      sink += hits;
    });
    cell.get_mops =
        std::max(cell.get_mops, Mops(w.point_ops_per_thread * threads, secs));
  }

  for (int run = 0; run < 2; ++run) {
    double secs = TimedThreads(threads, [&](size_t t) {
      uint64_t hits = 0;
      for (size_t base = 0; base < point[t].size(); base += kMultiGetBatch) {
        size_t n = std::min(kMultiGetBatch, point[t].size() - base);
        auto answers = db->MultiGet({point[t].data() + base, n});
        for (const auto& a : answers) hits += a.has_value();
      }
      sink += hits;
    });
    cell.multiget_mops = std::max(
        cell.multiget_mops, Mops(w.point_ops_per_thread * threads, secs));
  }

  for (int run = 0; run < 2; ++run) {
    double secs = TimedThreads(threads, [&](size_t t) {
      uint64_t rows = 0;
      for (size_t base = 0; base < los[t].size(); base += kScanBatch) {
        size_t n = std::min(kScanBatch, los[t].size() - base);
        auto batches = db->ScanRange({los[t].data() + base, n},
                                     {his[t].data() + base, n}, kScanLimit);
        for (const auto& b : batches) rows += b.size();
      }
      sink += rows;
    });
    cell.scanrange_qps = std::max(
        cell.scanrange_qps,
        Mops(w.scan_queries_per_thread * threads, secs) * 1e6);
  }

  return cell;
}

struct WriteCell {
  size_t shards = 0;
  size_t threads = 0;
  double put_mops = 0;    // Put-only, fresh engine, WAL off
  double mixed_mops = 0;  // 50/50 Get/Put on the put-populated engine
};

// Write-phase key streams: seeded per thread so the mixed phase can
// replay exactly the keys the put phase inserted.
uint64_t PutKey(Rng* rng) { return rng->Next(); }

/// Put-only then 50/50 mixed throughput. `make` builds a fresh engine
/// (fresh directory) per timed put run, so every run inserts into an
/// empty memtable; the mixed phase reuses the last run's populated
/// engine, reading back the put phase's keys while writing new ones.
template <typename MakeEngine>
WriteCell BenchWrites(MakeEngine make, const Workload& w, size_t shards,
                      size_t threads) {
  WriteCell cell;
  cell.shards = shards;
  cell.threads = threads;
  std::atomic<uint64_t> sink{0};
  for (int run = 0; run < 2; ++run) {
    auto db = make();
    double secs = TimedThreads(threads, [&](size_t t) {
      Rng rng(0xbee5 + t);
      for (uint64_t i = 0; i < w.put_ops_per_thread; ++i) {
        db->Put(PutKey(&rng), kPutValue);
      }
    });
    cell.put_mops =
        std::max(cell.put_mops, Mops(w.put_ops_per_thread * threads, secs));
    if (run != 1) continue;
    // Mixed runs mutate the engine, so later timed repeats see more
    // resident data — best-of-2 with distinct write streams keeps the
    // comparison honest enough for a scaling ratio.
    for (int mixed_run = 0; mixed_run < 2; ++mixed_run) {
      double mixed_secs = TimedThreads(threads, [&](size_t t) {
        Rng read_rng(0xbee5 + t);  // replays the put phase's keys
        Rng write_rng(0xf00d + 131 * mixed_run + t);
        uint64_t hits = 0;
        std::string value;
        for (uint64_t i = 0; i < w.put_ops_per_thread; ++i) {
          if (i & 1) {
            db->Put(PutKey(&write_rng), kPutValue);
          } else {
            hits += db->Get(PutKey(&read_rng), &value);
          }
        }
        sink.fetch_add(hits, std::memory_order_relaxed);
      });
      cell.mixed_mops = std::max(
          cell.mixed_mops, Mops(w.put_ops_per_thread * threads, mixed_secs));
    }
  }
  return cell;
}

struct DeleteCell {
  size_t shards = 0;
  size_t threads = 0;
  double delete_mops = 0;  // delete-heavy: tombstone every ingested key
  double pdg_mops = 0;     // 25/25/50 put/delete/get mix
};

/// Delete-path throughput. Each run populates a fresh engine with the
/// put phase's exact key streams (untimed), then times a delete-heavy
/// pass (tombstoning every ingested key — the write path's cost for a
/// delete record + memtable tombstone), then a 25/25/50 put/delete/get
/// mix over the churned store — point reads now climb over live
/// tombstones in the memtable and L0.
template <typename MakeEngine>
DeleteCell BenchDeletes(MakeEngine make, const Workload& w, size_t shards,
                        size_t threads) {
  DeleteCell cell;
  cell.shards = shards;
  cell.threads = threads;
  std::atomic<uint64_t> sink{0};
  for (int run = 0; run < 2; ++run) {
    auto db = make();
    TimedThreads(threads, [&](size_t t) {
      Rng rng(0xbee5 + t);
      for (uint64_t i = 0; i < w.put_ops_per_thread; ++i) {
        db->Put(PutKey(&rng), kPutValue);
      }
    });
    double secs = TimedThreads(threads, [&](size_t t) {
      Rng rng(0xbee5 + t);  // replays the put phase's keys
      for (uint64_t i = 0; i < w.put_ops_per_thread; ++i) {
        db->Delete(PutKey(&rng));
      }
    });
    cell.delete_mops =
        std::max(cell.delete_mops, Mops(w.put_ops_per_thread * threads, secs));
    if (run != 1) continue;
    for (int mixed_run = 0; mixed_run < 2; ++mixed_run) {
      double mixed_secs = TimedThreads(threads, [&](size_t t) {
        Rng key_rng(0xbee5 + 977 * (mixed_run + 1) + t);
        uint64_t hits = 0;
        std::string value;
        for (uint64_t i = 0; i < w.put_ops_per_thread; ++i) {
          uint64_t key = PutKey(&key_rng);
          switch (i & 3) {
            case 0:
              db->Put(key, kPutValue);
              break;
            case 1:
              db->Delete(key);
              break;
            default:
              hits += db->Get(key, &value);
              break;
          }
        }
        sink.fetch_add(hits, std::memory_order_relaxed);
      });
      cell.pdg_mops = std::max(
          cell.pdg_mops, Mops(w.put_ops_per_thread * threads, mixed_secs));
    }
  }
  return cell;
}

/// Times one put-only pass over a fresh engine.
template <typename EnginePtr>
double TimePuts(const EnginePtr& db, const Workload& w, size_t threads) {
  double secs = TimedThreads(threads, [&](size_t t) {
    Rng rng(0xbee5 + t);
    for (uint64_t i = 0; i < w.put_ops_per_thread; ++i) {
      db->Put(PutKey(&rng), kPutValue);
    }
  });
  return Mops(w.put_ops_per_thread * threads, secs);
}

/// Put-only throughput alone (best of two fresh engines).
template <typename MakeEngine>
double BenchPutsOnly(MakeEngine make, const Workload& w, size_t threads) {
  double best = 0;
  for (int run = 0; run < 2; ++run) {
    auto db = make();
    best = std::max(best, TimePuts(db, w, threads));
  }
  return best;
}

/// WAL-off vs WAL-on put throughput, interleaved: alternating fresh
/// engines within one probe see the same machine state, so the ratio
/// isolates the WAL cost instead of picking up drift between distant
/// phases of the bench run. Returns {best_off, best_on}.
template <typename MakeOff, typename MakeOn>
std::pair<double, double> BenchWalPair(MakeOff make_off, MakeOn make_on,
                                       const Workload& w, size_t threads) {
  double best_off = 0, best_on = 0;
  for (int run = 0; run < 3; ++run) {
    {
      auto db = make_off();
      best_off = std::max(best_off, TimePuts(db, w, threads));
    }
    {
      auto db = make_on();
      best_on = std::max(best_on, TimePuts(db, w, threads));
    }
  }
  return {best_off, best_on};
}

}  // namespace
}  // namespace bloomrf

int main(int argc, char** argv) {
  using namespace bloomrf;

  bool smoke = false;
  std::string out_path = "BENCH_lsm_concurrent.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const uint64_t keys = smoke ? 200'000 : 1'000'000;
  Workload w;
  w.data = MakeDataset(keys, Distribution::kUniform, 0x15a);
  w.point_ops_per_thread = smoke ? 40'000 : 200'000;
  w.scan_queries_per_thread = smoke ? 1'024 : 4'096;
  w.put_ops_per_thread = smoke ? 100'000 : 400'000;

  unsigned hw = std::thread::hardware_concurrency();
  std::printf("lsm_throughput: %" PRIu64 " keys, hardware_concurrency=%u%s\n",
              keys, hw, smoke ? " (smoke)" : "");
  if (hw < 8) {
    std::printf("note: fewer than 8 cores; 8-thread scaling is bounded by "
                "the host, guard floors are derived from this run\n");
  }

  const std::string base_dir = "/tmp/bloomrf_bench_lsm_throughput";
  std::filesystem::remove_all(base_dir);
  FilterBuildParams params;
  params.bits_per_key = 18.0;
  params.max_range = 1e6;

  // ---- Baseline: plain Db, one thread, scalar loops ------------------
  DbOptions db_options;
  db_options.dir = base_dir + "/plain";
  db_options.filter_policy = NewRegistryPolicy("bloomrf", params);
  db_options.memtable_bytes = 4 << 20;
  db_options.block_cache_bytes = 256 << 20;
  db_options.wal = false;  // read cells measure the probe path alone
  CellResult baseline;
  {
    Db db(db_options);
    for (uint64_t k : w.data.keys) db.Put(k, "0123456789abcdef");
    db.Flush();
    baseline = BenchEngine(&db, w, /*shards=*/1, /*threads=*/1);
    std::printf("%-22s Get %7.2f Mops   MultiGet %7.2f Mops   ScanRange "
                "%9.0f q/s\n",
                "baseline Db (1 thr)", baseline.get_mops,
                baseline.multiget_mops, baseline.scanrange_qps);
  }

  // ---- ShardedDb sweep ----------------------------------------------
  std::vector<size_t> shard_counts = smoke ? std::vector<size_t>{1, 8}
                                           : std::vector<size_t>{1, 4, 8};
  std::vector<size_t> thread_counts = smoke ? std::vector<size_t>{1, 8}
                                            : std::vector<size_t>{1, 2, 4, 8};
  std::vector<CellResult> cells;
  for (size_t shards : shard_counts) {
    ShardedDbOptions options;
    options.dir = base_dir + "/s" + std::to_string(shards);
    options.filter_policy = NewRegistryPolicy("bloomrf", params);
    options.num_shards = shards;
    options.memtable_bytes = (4 << 20) / shards;
    options.block_cache_bytes = 256 << 20;
    options.wal = false;
    ShardedDb db(options);
    for (uint64_t k : w.data.keys) db.Put(k, "0123456789abcdef");
    db.Flush();
    for (size_t threads : thread_counts) {
      // 1-thread cells keep the fan-out pool: that IS the shard
      // parallelism a single caller gets.
      CellResult cell = BenchEngine(&db, w, shards, threads);
      std::printf("shards=%zu threads=%zu     Get %7.2f Mops   MultiGet "
                  "%7.2f Mops   ScanRange %9.0f q/s\n",
                  shards, threads, cell.get_mops, cell.multiget_mops,
                  cell.scanrange_qps);
      cells.push_back(cell);
    }
  }
  // ---- Write path: Put-only and 50/50 mixed cells --------------------
  const size_t max_shards = shard_counts.back();
  const size_t max_threads = thread_counts.back();
  auto make_sharded = [&](size_t shards, bool wal) {
    const std::string dir = base_dir + "/w" + std::to_string(shards) +
                            (wal ? "-wal" : "");
    std::filesystem::remove_all(dir);
    ShardedDbOptions options;
    options.dir = dir;
    options.filter_policy = NewRegistryPolicy("bloomrf", params);
    options.num_shards = shards;
    options.memtable_bytes = (4 << 20) / shards;
    options.block_cache_bytes = 64 << 20;
    options.wal = wal;
    return std::make_unique<ShardedDb>(options);
  };

  double baseline_put;
  {
    auto make_plain = [&] {
      const std::string dir = base_dir + "/wplain";
      std::filesystem::remove_all(dir);
      DbOptions options = db_options;
      options.dir = dir;
      return std::make_unique<Db>(options);
    };
    baseline_put = BenchPutsOnly(make_plain, w, 1);
    std::printf("%-22s Put %7.2f Mops\n", "baseline Db (1 thr)", baseline_put);
  }

  std::vector<WriteCell> write_cells;
  for (size_t shards : shard_counts) {
    for (size_t threads : thread_counts) {
      WriteCell cell = BenchWrites([&] { return make_sharded(shards, false); },
                                   w, shards, threads);
      std::printf("shards=%zu threads=%zu     Put %7.2f Mops   mixed 50/50 "
                  "%7.2f Mops\n",
                  shards, threads, cell.put_mops, cell.mixed_mops);
      write_cells.push_back(cell);
    }
  }

  // ---- Delete path: delete-heavy and 25/25/50 put/delete/get cells ---
  std::vector<DeleteCell> delete_cells;
  for (size_t shards : shard_counts) {
    for (size_t threads : thread_counts) {
      DeleteCell cell = BenchDeletes(
          [&] { return make_sharded(shards, false); }, w, shards, threads);
      std::printf("shards=%zu threads=%zu     Delete %7.2f Mops   25/25/50 "
                  "p/d/g %7.2f Mops\n",
                  shards, threads, cell.delete_mops, cell.pdg_mops);
      delete_cells.push_back(cell);
    }
  }

  // ---- WAL overhead (group commit, wal_fsync=false) ------------------
  auto [wal_off_1s1t, wal_put_1s1t] = BenchWalPair(
      [&] { return make_sharded(1, false); },
      [&] { return make_sharded(1, true); }, w, 1);
  auto [wal_off_max, wal_put_max] = BenchWalPair(
      [&] { return make_sharded(max_shards, false); },
      [&] { return make_sharded(max_shards, true); }, w, max_threads);
  auto write_cell_at = [&](size_t shards, size_t threads) -> const WriteCell* {
    for (const WriteCell& c : write_cells) {
      if (c.shards == shards && c.threads == threads) return &c;
    }
    return nullptr;
  };
  const WriteCell* wmax1 = write_cell_at(max_shards, 1);
  const WriteCell* wmaxt = write_cell_at(max_shards, max_threads);
  double wal_ratio_1s1t = wal_off_1s1t > 0 ? wal_put_1s1t / wal_off_1s1t : 0;
  double wal_ratio_max = wal_off_max > 0 ? wal_put_max / wal_off_max : 0;
  double put_scaling = wmax1 && wmaxt && wmax1->put_mops > 0
                           ? wmaxt->put_mops / wmax1->put_mops
                           : 0;
  double mixed_scaling = wmax1 && wmaxt && wmax1->mixed_mops > 0
                             ? wmaxt->mixed_mops / wmax1->mixed_mops
                             : 0;
  std::printf("WAL overhead (fsync off): 1s/1t Put %7.2f Mops (ratio %.2f)  "
              "%zus/%zut Put %7.2f Mops (ratio %.2f)\n",
              wal_put_1s1t, wal_ratio_1s1t, max_shards, max_threads,
              wal_put_max, wal_ratio_max);
  std::printf("write scaling 1->%zu threads (%zu shards): Put %.2fx  "
              "mixed %.2fx\n",
              max_threads, max_shards, put_scaling, mixed_scaling);

  auto delete_cell_at = [&](size_t shards,
                            size_t threads) -> const DeleteCell* {
    for (const DeleteCell& c : delete_cells) {
      if (c.shards == shards && c.threads == threads) return &c;
    }
    return nullptr;
  };
  const DeleteCell* d11 = delete_cell_at(1, 1);
  const DeleteCell* dmax1 = delete_cell_at(max_shards, 1);
  const DeleteCell* dmaxt = delete_cell_at(max_shards, max_threads);
  const WriteCell* w11 = write_cell_at(1, 1);
  double delete_scaling = dmax1 && dmaxt && dmax1->delete_mops > 0
                              ? dmaxt->delete_mops / dmax1->delete_mops
                              : 0;
  double pdg_scaling = dmax1 && dmaxt && dmax1->pdg_mops > 0
                           ? dmaxt->pdg_mops / dmax1->pdg_mops
                           : 0;
  // A delete is a smaller WAL record and a value-free memtable entry,
  // so delete-heavy throughput should track put throughput; the ratio
  // (1 shard, 1 thread) catches a delete path that grew an accidental
  // extra cost (e.g. a read-before-write or a second lock pass).
  double delete_put_ratio = d11 && w11 && w11->put_mops > 0
                                ? d11->delete_mops / w11->put_mops
                                : 0;
  std::printf("delete scaling 1->%zu threads (%zu shards): Delete %.2fx  "
              "25/25/50 %.2fx;  delete/put ratio (1s/1t) %.2f\n",
              max_threads, max_shards, delete_scaling, pdg_scaling,
              delete_put_ratio);

  // ---- Read amplification: L0 pile vs leveled tree -------------------
  // The same dataset flushed as ~16 small memtables, then point-read
  // single-threaded: with compaction off every Get consults every L0
  // file's filter; with leveled compaction the tree collapses to a few
  // files. get_ratio = on/off is the read-amp win the guard floors
  // (core-count independent: both sides run one thread on this host).
  double ra_off_mops = 0, ra_on_mops = 0;
  size_t ra_tables_off = 0, ra_tables_on = 0;
  {
    const uint64_t ra_keys = smoke ? 100'000 : 400'000;
    const uint64_t ra_queries = smoke ? 100'000 : 200'000;
    Rng rng(0x5eed);
    std::vector<uint64_t> queries;
    queries.reserve(ra_queries);
    for (uint64_t q = 0; q < ra_queries; ++q) {
      queries.push_back(w.data.keys[rng.Uniform(ra_keys)]);
    }
    for (bool compaction : {false, true}) {
      const std::string dir = base_dir + (compaction ? "/ra-on" : "/ra-off");
      std::filesystem::remove_all(dir);
      DbOptions options = db_options;
      options.dir = dir;
      options.wal = false;
      // Sized for ~16 flushed memtables from ra_keys entries.
      options.memtable_bytes = ra_keys * 30 / 16;
      options.compaction = compaction;
      options.l0_compaction_trigger = 4;
      options.level_base_bytes = 1 << 20;
      options.level_size_multiplier = 4;
      Db db(options);
      for (uint64_t i = 0; i < ra_keys; ++i) db.Put(w.data.keys[i], kPutValue);
      db.Flush();
      if (compaction) db.WaitForCompaction();
      const size_t tables = db.num_tables();
      double best = 0;
      uint64_t hits = 0;
      std::string value;
      for (int run = 0; run < 2; ++run) {
        Timer timer;
        for (uint64_t k : queries) hits += db.Get(k, &value);
        best = std::max(best, Mops(queries.size(), timer.ElapsedSeconds()));
      }
      if (hits == 0) std::printf("read_amp: warmup anomaly (0 hits)\n");
      if (compaction) {
        ra_on_mops = best;
        ra_tables_on = tables;
      } else {
        ra_off_mops = best;
        ra_tables_off = tables;
      }
    }
    std::printf("read amplification: compaction off %zu tables Get %7.2f "
                "Mops   on %zu tables Get %7.2f Mops (ratio %.2f)\n",
                ra_tables_off, ra_off_mops, ra_tables_on, ra_on_mops,
                ra_off_mops > 0 ? ra_on_mops / ra_off_mops : 0);
  }
  double read_amp_ratio = ra_off_mops > 0 ? ra_on_mops / ra_off_mops : 0;

  // ---- Sustained ingest vs compaction debt: scheduler width sweep ----
  // The same single-threaded ingest (WAL off, background compaction
  // on, tiny levels so compaction work dominates) with 1, 2 and 4
  // scheduler workers and matching subcompaction fan-out; the timed
  // region includes WaitForCompaction, so the Mops is the SUSTAINED
  // rate — ingest plus paying off the full compaction debt it created.
  // On a multicore host the extra workers drain L0 concurrently with
  // deeper jobs and each job's merge spreads over subcompactions; on a
  // small runner the guard only demands parallel does not collapse
  // below serial (see perf_guard.py's compaction cap).
  const size_t ingest_widths[3] = {1, 2, 4};
  double ingest_mops[3] = {0, 0, 0};
  {
    const uint64_t ingest_keys = smoke ? 150'000 : 600'000;
    for (int cfg = 0; cfg < 3; ++cfg) {
      for (int run = 0; run < 2; ++run) {
        const std::string dir = base_dir + "/ingest";
        std::filesystem::remove_all(dir);
        DbOptions options = db_options;
        options.dir = dir;
        options.wal = false;
        options.memtable_bytes = 256 << 10;
        options.compaction = true;
        options.compaction_threads = ingest_widths[cfg];
        options.max_subcompactions = ingest_widths[cfg];
        options.subcompaction_min_bytes = 0;
        options.l0_compaction_trigger = 4;
        options.level_base_bytes = 1 << 20;
        options.level_size_multiplier = 4;
        Db db(options);
        Timer timer;
        Rng rng(0x1695 + run);
        for (uint64_t i = 0; i < ingest_keys; ++i) {
          db.Put(rng.Next(), kPutValue);
        }
        db.Flush();
        db.WaitForCompaction();
        ingest_mops[cfg] = std::max(
            ingest_mops[cfg], Mops(ingest_keys, timer.ElapsedSeconds()));
      }
      std::printf("sustained ingest, compaction_threads=%zu: %7.2f Mops\n",
                  ingest_widths[cfg], ingest_mops[cfg]);
    }
  }
  double ingest_ratio_2t =
      ingest_mops[0] > 0 ? ingest_mops[1] / ingest_mops[0] : 0;
  double ingest_ratio_4t =
      ingest_mops[0] > 0 ? ingest_mops[2] / ingest_mops[0] : 0;
  std::printf("parallel-compaction ingest ratio: 2 workers %.2fx  "
              "4 workers %.2fx vs serial\n",
              ingest_ratio_2t, ingest_ratio_4t);
  std::filesystem::remove_all(base_dir);

  auto cell_at = [&](size_t shards, size_t threads) -> const CellResult* {
    for (const CellResult& c : cells) {
      if (c.shards == shards && c.threads == threads) return &c;
    }
    return nullptr;
  };
  const CellResult* s8t1 = cell_at(8, 1);
  const CellResult* s8t8 = cell_at(8, 8);
  const CellResult* s1t1 = cell_at(1, 1);
  double multiget_scaling =
      s8t1 && s8t8 && s8t1->multiget_mops > 0
          ? s8t8->multiget_mops / s8t1->multiget_mops
          : 0;
  double scanrange_scaling =
      s8t1 && s8t8 && s8t1->scanrange_qps > 0
          ? s8t8->scanrange_qps / s8t1->scanrange_qps
          : 0;
  double single_shard_ratio =
      s1t1 && baseline.multiget_mops > 0
          ? s1t1->multiget_mops / baseline.multiget_mops
          : 0;
  std::printf("scaling 1->8 threads (8 shards): MultiGet %.2fx  ScanRange "
              "%.2fx;  1-shard/plain-Db MultiGet ratio %.2f\n",
              multiget_scaling, scanrange_scaling, single_shard_ratio);

  // ---- JSON ----------------------------------------------------------
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"lsm_concurrent\",\n  \"smoke\": %s,\n"
               "  \"hardware_concurrency\": %u,\n  \"keys\": %" PRIu64 ",\n"
               "  \"point_ops_per_thread\": %" PRIu64 ",\n"
               "  \"scan_queries_per_thread\": %" PRIu64 ",\n"
               "  \"put_ops_per_thread\": %" PRIu64 ",\n"
               "  \"baseline\": {\"db_get_mops\": %.3f, "
               "\"db_multiget_mops\": %.3f, \"db_scanrange_qps\": %.0f, "
               "\"db_put_mops\": %.3f},\n"
               "  \"scaling\": [\n",
               smoke ? "true" : "false", hw, keys, w.point_ops_per_thread,
               w.scan_queries_per_thread, w.put_ops_per_thread,
               baseline.get_mops, baseline.multiget_mops,
               baseline.scanrange_qps, baseline_put);
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    std::fprintf(json,
                 "    {\"shards\": %zu, \"threads\": %zu, "
                 "\"get_mops\": %.3f, \"multiget_mops\": %.3f, "
                 "\"scanrange_qps\": %.0f}%s\n",
                 c.shards, c.threads, c.get_mops, c.multiget_mops,
                 c.scanrange_qps, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"write\": [\n");
  for (size_t i = 0; i < write_cells.size(); ++i) {
    const WriteCell& c = write_cells[i];
    std::fprintf(json,
                 "    {\"shards\": %zu, \"threads\": %zu, "
                 "\"put_mops\": %.3f, \"mixed_mops\": %.3f}%s\n",
                 c.shards, c.threads, c.put_mops, c.mixed_mops,
                 i + 1 < write_cells.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"delete\": [\n");
  for (size_t i = 0; i < delete_cells.size(); ++i) {
    const DeleteCell& c = delete_cells[i];
    std::fprintf(json,
                 "    {\"shards\": %zu, \"threads\": %zu, "
                 "\"delete_mops\": %.3f, \"pdg_mops\": %.3f}%s\n",
                 c.shards, c.threads, c.delete_mops, c.pdg_mops,
                 i + 1 < delete_cells.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"wal\": {\"put_mops_1s1t\": %.3f, "
               "\"put_ratio_1s1t\": %.3f, \"put_mops_max\": %.3f, "
               "\"put_ratio_max\": %.3f, \"max_shards\": %zu, "
               "\"max_threads\": %zu},\n",
               wal_put_1s1t, wal_ratio_1s1t, wal_put_max, wal_ratio_max,
               max_shards, max_threads);
  std::fprintf(json,
               "  \"read_amp\": {\"tables_off\": %zu, \"tables_on\": %zu, "
               "\"get_mops_off\": %.3f, \"get_mops_on\": %.3f, "
               "\"get_ratio\": %.3f},\n",
               ra_tables_off, ra_tables_on, ra_off_mops, ra_on_mops,
               read_amp_ratio);
  std::fprintf(json,
               "  \"compaction\": {\"ingest_mops_1t\": %.3f, "
               "\"ingest_mops_2t\": %.3f, \"ingest_mops_4t\": %.3f, "
               "\"ingest_ratio_2t\": %.3f, \"ingest_ratio_4t\": %.3f},\n",
               ingest_mops[0], ingest_mops[1], ingest_mops[2], ingest_ratio_2t,
               ingest_ratio_4t);
  // Conservative floors (0.8x of this run) for scripts/perf_guard.py.
  // Host mismatch (a multicore bench host gating a small CI runner, or
  // vice versa) is handled by the guard itself: runners with fewer
  // than 8 cores are only required not to collapse below serial speed,
  // whatever the committed scaling floor says. The WAL ratio floor is
  // core-count independent (both sides of the ratio run on the same
  // host) but clamped at 1.0 before the 0.8x — a measured ratio above
  // 1 is scheduler noise (the WAL cannot make puts faster), and
  // baking it in would demand more than lossless from every CI run.
  // The read-amp ratio floor is clamped at 1.2 before the 0.8x: the
  // leveled tree's Get win over the L0 pile varies with store shape,
  // so the gate only demands that compaction never makes point reads
  // slower — a bigger measured win is reported, not required.
  auto capped = [](double r) { return std::min(r, 1.0); };
  std::fprintf(json,
               "  \"guard\": {\"multiget_scaling_8t\": %.3f, "
               "\"scanrange_scaling_8t\": %.3f, "
               "\"single_shard_multiget_ratio\": %.3f, "
               "\"put_scaling_8t\": %.3f, \"mixed_scaling_8t\": %.3f, "
               "\"delete_scaling_8t\": %.3f, \"pdg_scaling_8t\": %.3f, "
               "\"delete_put_ratio\": %.3f, "
               "\"wal_put_ratio\": %.3f, \"read_amp_get_ratio\": %.3f, "
               "\"compaction_ingest_ratio_4t\": %.3f}\n}\n",
               multiget_scaling * 0.8, scanrange_scaling * 0.8,
               single_shard_ratio * 0.8, capped(put_scaling) * 0.8,
               capped(mixed_scaling) * 0.8, capped(delete_scaling) * 0.8,
               capped(pdg_scaling) * 0.8, capped(delete_put_ratio) * 0.8,
               capped(wal_ratio_1s1t) * 0.8,
               std::min(read_amp_ratio, 1.2) * 0.8,
               // Clamped at 1.3 before the 0.8x: on a big host the
               // committed floor demands a real parallel win (>= ~1.04x
               // after the CI 0.9 ratio); small runners are re-capped by
               // the guard to "no collapse below serial".
               std::min(ingest_ratio_4t, 1.3) * 0.8);
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

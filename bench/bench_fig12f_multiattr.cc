// Figure 12.F: dual-attribute filtering on the synthetic SDSS dataset
// (stand-in for DR16, see DESIGN.md). Compares one multi-attribute
// bloomRF(Run, ObjectID) probed with `Run < 300 AND ObjectID = c`
// against two separate bloomRF filters combined conjunctively.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "core/multi_attribute.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/synthetic_sdss.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 300'000, 20'000);
  Header("Fig. 12.F", "multi-attribute vs two separate filters (SDSS)",
         scale);

  SdssOptions sopt;
  sopt.num_rows = scale.keys;
  std::vector<SdssRow> rows = GenerateSdssRows(sopt);
  // Attribute domains: Run is small-integer, ObjectID is wide. Shift
  // Run into the high bits so 32-bit reduction keeps its precision.
  auto run_key = [](uint64_t run) { return run << 40; };

  std::vector<uint64_t> ids;
  for (const auto& row : rows) ids.push_back(row.object_id);
  std::sort(ids.begin(), ids.end());

  std::printf("%-6s %-22s %-22s %-14s %-14s\n", "bpk", "multiattr FPR",
              "two-filters FPR", "multi Mops/s", "two Mops/s");
  for (double bpk : {10.0, 14.0, 18.0, 22.0}) {
    MultiAttributeBloomRF multi(
        BloomRFConfig::Basic(rows.size() * 2, bpk));
    BloomRF run_filter(BloomRFConfig::Basic(rows.size(), bpk / 2));
    BloomRF id_filter(BloomRFConfig::Basic(rows.size(), bpk / 2));
    for (const auto& row : rows) {
      multi.Insert(run_key(row.run), row.object_id);
      run_filter.Insert(run_key(row.run));
      id_filter.Insert(row.object_id);
    }

    // The paper's scenario: probe Run<300 AND ObjectID=c for *existing*
    // ObjectIDs whose row has Run >= 300. Each attribute predicate is
    // individually satisfiable (the separate ID filter truthfully
    // fires, and rows with Run<300 exist), but the conjunction is
    // empty — only the joint filter can see that.
    std::vector<uint64_t> candidates;
    for (const auto& row : rows) {
      if (row.run >= 300) candidates.push_back(row.object_id);
      if (candidates.size() >= scale.queries) break;
    }
    uint64_t fp_multi = 0, fp_two = 0;
    Timer multi_timer;
    for (uint64_t candidate : candidates) {
      if (multi.MayMatchRangePoint(run_key(0), run_key(299), candidate)) {
        ++fp_multi;
      }
    }
    double multi_seconds = multi_timer.ElapsedSeconds();
    Timer two_timer;
    for (uint64_t candidate : candidates) {
      bool run_side = run_filter.MayContainRange(
          run_key(0), run_key(299) | ((uint64_t{1} << 40) - 1));
      bool id_side = id_filter.MayContain(candidate);
      if (run_side && id_side) ++fp_two;
    }
    double two_seconds = two_timer.ElapsedSeconds();
    uint64_t queries = candidates.size();
    uint64_t q2 = queries;
    std::printf("%-6.0f %-22.4f %-22.4f %-14.2f %-14.2f\n", bpk,
                static_cast<double>(fp_multi) / queries,
                static_cast<double>(fp_two) / queries,
                Mops(queries, multi_seconds), Mops(q2, two_seconds));
  }
  std::printf("\nShape check (paper): the multi-attribute filter yields "
              "better FPR than the\nconjunction of two separate filters — "
              "despite its reduced 32-bit precision —\nbecause its FPR "
              "depends on the joint selectivity, not the product.\n");
  return 0;
}

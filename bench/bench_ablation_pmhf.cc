// Ablation study of bloomRF's design choices (DESIGN.md Sect. 7):
//  1. word-local order (PMHF delta=7) vs near-planar hashing (delta=1,
//     every level its own bit — no in-word ranges);
//  2. exact layer on/off at equal total budget;
//  3. replicated hash functions on the top layer;
//  4. word permutation (degenerate-distribution defence) overhead.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "util/timer.h"
#include "workload/key_generator.h"
#include "workload/query_generator.h"

using namespace bloomrf;
using namespace bloomrf::bench;

namespace {

struct Measurement {
  double fpr;
  double mops;
};

Measurement Measure(const BloomRFConfig& cfg, const Dataset& data,
                    const QueryWorkload& workload) {
  BloomRF filter(cfg);
  for (uint64_t k : data.keys) filter.Insert(k);
  uint64_t fp = 0, empties = 0;
  Timer timer;
  for (const RangeQuery& q : workload.range_queries) {
    bool answer = filter.MayContainRange(q.lo, q.hi);
    if (q.empty) {
      ++empties;
      if (answer) ++fp;
    }
  }
  double seconds = timer.ElapsedSeconds();
  return {empties ? static_cast<double>(fp) / empties : 0.0,
          Mops(workload.range_queries.size(), seconds)};
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 500'000, 20'000);
  Header("Ablation", "PMHF / exact layer / replicas / permutation", scale);
  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0xab1);
  const double kBpk = 18.0;
  QueryWorkload workload = MakeQueryWorkload(data, scale.queries, 1 << 14,
                                             Distribution::kUniform, 0xab2);

  std::printf("%-44s %10s %12s\n", "variant (range 2^14, 18 bits/key)",
              "FPR", "Mprobe/s");

  BloomRFConfig pmhf = BloomRFConfig::Basic(scale.keys, kBpk, 64, 7);
  Measurement m = Measure(pmhf, data, workload);
  std::printf("%-44s %10.4f %12.2f\n", "PMHF delta=7 (word-local order)",
              m.fpr, m.mops);

  BloomRFConfig planar = BloomRFConfig::Basic(scale.keys, kBpk, 64, 1);
  m = Measure(planar, data, workload);
  std::printf("%-44s %10.4f %12.2f\n",
              "planar delta=1 (single-bit words)", m.fpr, m.mops);

  AdvisorParams params;
  params.n = scale.keys;
  params.total_bits = static_cast<uint64_t>(kBpk * scale.keys);
  params.max_range = 1 << 14;
  BloomRFConfig advised = AdviseConfig(params).config;
  m = Measure(advised, data, workload);
  std::printf("%-44s %10.4f %12.2f\n",
              advised.has_exact_layer ? "advisor (with exact layer)"
                                      : "advisor (basic selected)",
              m.fpr, m.mops);

  BloomRFConfig replicated = BloomRFConfig::Basic(scale.keys, kBpk, 64, 7);
  replicated.replicas.back() = 2;
  m = Measure(replicated, data, workload);
  std::printf("%-44s %10.4f %12.2f\n", "basic + replicated top layer (r=2)",
              m.fpr, m.mops);

  BloomRFConfig permuted = BloomRFConfig::Basic(scale.keys, kBpk, 64, 7);
  permuted.permute_words = true;
  m = Measure(permuted, data, workload);
  std::printf("%-44s %10.4f %12.2f\n", "basic + word permutation", m.fpr,
              m.mops);

  std::printf("\nExpected: delta=7 beats delta=1 on FPR *and* speed (word "
              "probes);\nexact layer helps at larger ranges; permutation is "
              "~free on uniform data.\n");
  return 0;
}

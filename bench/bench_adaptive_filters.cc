// The adaptive-filter tuning loop under a shifting workload.
//
// One dataset, three query phases with very different filter needs:
//   point   50% present / 50% absent point Gets — a plain blocked
//           Bloom is optimal, range capability buys nothing;
//   wide    batched ~2^30-wide empty range scans — point-only Blooms
//           score range FPR 1 and pay a block probe per table per
//           query, a range filter rejects in memory;
//   zipf    a bimodal mix: Zipf-skewed point Gets plus narrow empty
//           ranges anchored just past hot keys — bloomRF's territory.
//
// Four policies run every phase: three static ones (bloomrf,
// blocked_bloom, rosetta — each the wrong choice for at least one
// phase) and the adaptive policy, which between phases gets exactly
// one re-tune: sampler Reset -> untimed warmup pass (the sampler
// observes the new mix) -> CompactAll (tables rebuilt under the new
// plan) -> timed run. The acceptance bar: adaptive lands within 5% of
// the best static in EVERY phase and beats the worst static by >=
// 1.15x in at least one — i.e. the tuning loop converges to the right
// backend and the sampling tax is negligible.
//
// The `sampler` section times the same point-Get workload on one
// engine with sampling off vs on (interleaved best-of-3); the ratio
// bounds the sampler's hot-path overhead (acceptance: >= 0.98).
//
// Writes BENCH_adaptive.json (--out=PATH) with conservative `guard`
// floors (capped at the acceptance bars, then 0.9x'd by
// scripts/perf_guard.py) for CI. --smoke shrinks everything.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "lsm/db.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

using bench::Mops;

constexpr std::string_view kValue = "0123456789abcdef";
constexpr size_t kScanBatch = 64;
constexpr size_t kScanLimit = 16;

struct PhaseWorkload {
  std::string name;
  std::vector<uint64_t> point_keys;         // scalar Gets
  std::vector<uint64_t> los, his;           // batched ScanRange
  uint64_t queries() const { return point_keys.size() + los.size(); }
};

// Uniform keys over the 64-bit domain leave it astronomically sparse:
// a 2^30-wide window almost surely holds no key, so "empty range"
// queries need no ground-truth filtering.
PhaseWorkload MakePointPhase(const Dataset& data, uint64_t n) {
  PhaseWorkload w;
  w.name = "point";
  Rng rng(0xadab7);
  w.point_keys.reserve(n);
  for (uint64_t q = 0; q < n; ++q) {
    w.point_keys.push_back((q & 1) ? data.keys[rng.Uniform(data.keys.size())]
                                   : rng.Next());
  }
  return w;
}

PhaseWorkload MakeWidePhase(uint64_t n) {
  PhaseWorkload w;
  w.name = "wide";
  Rng rng(0x31de);
  w.los.reserve(n);
  w.his.reserve(n);
  for (uint64_t q = 0; q < n; ++q) {
    uint64_t lo = rng.Next() >> 1;  // headroom for the width
    w.los.push_back(lo);
    w.his.push_back(lo + (uint64_t{1} << 30));
  }
  return w;
}

PhaseWorkload MakeZipfPhase(const Dataset& data, uint64_t n) {
  PhaseWorkload w;
  w.name = "zipf";
  ZipfianGenerator zipf(data.sorted_keys.size(), 0.99, 0x21bf);
  Rng rng(0x21c0);
  // 1/4 point Gets (half hot-present, half absent), 3/4 narrow ranges
  // anchored just past Zipf-hot keys: inside the domain but almost
  // surely empty (the next key is ~2^44 away on average). The phase's
  // avoidable cost is the block reads a range-blind filter cannot
  // skip — present-key Gets, which every filter must pass, stay a
  // minority so they don't drown the comparison.
  w.point_keys.reserve(n / 4);
  for (uint64_t q = 0; q < n / 4; ++q) {
    w.point_keys.push_back(
        (q & 1) ? data.sorted_keys[zipf.NextScrambled()] : rng.Next());
  }
  uint64_t ranges = n - n / 4;
  w.los.reserve(ranges);
  w.his.reserve(ranges);
  for (uint64_t q = 0; q < ranges; ++q) {
    uint64_t hot = data.sorted_keys[zipf.NextScrambled()];
    w.los.push_back(hot + 1);
    w.his.push_back(hot + 256);
  }
  return w;
}

/// One pass of a phase over `db`; returns queries/sec in Mops.
double RunPhaseOnce(Db* db, const PhaseWorkload& w) {
  Timer timer;
  uint64_t sink = 0;
  std::string value;
  for (uint64_t k : w.point_keys) sink += db->Get(k, &value);
  for (size_t base = 0; base < w.los.size(); base += kScanBatch) {
    size_t n = std::min(kScanBatch, w.los.size() - base);
    auto batches = db->ScanRange({w.los.data() + base, n},
                                 {w.his.data() + base, n}, kScanLimit);
    for (const auto& rows : batches) sink += rows.size();
  }
  double secs = timer.ElapsedSeconds();
  if (sink == ~0ull) std::printf("impossible\n");  // keep `sink` live
  return Mops(w.queries(), secs);
}

std::unique_ptr<Db> MakeDb(const std::string& dir,
                           std::shared_ptr<FilterPolicy> policy,
                           const Dataset& data, bool sample = false) {
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.dir = dir;
  options.filter_policy = std::move(policy);
  options.memtable_bytes = 256ull << 20;  // whole dataset in one SST
  // No block cache: a filter false positive costs a real block read
  // (the cost range filters exist to avoid), so filter quality — what
  // the planner optimizes — is what the clock sees, instead of being
  // hidden behind cache-hot ~100ns block probes.
  options.block_cache_bytes = 0;
  options.background_flush = false;
  options.wal = false;
  options.sample_queries = sample;
  auto db = std::make_unique<Db>(options);
  for (uint64_t k : data.keys) db->Put(k, kValue);
  db->Flush();
  // Tree-shape parity: the adaptive engine re-tunes via CompactAll,
  // whose output is split into level-sized SSTs — more tables than the
  // single SST a flush leaves, and each query probes every table's
  // filter. Compacting every engine once at setup gives all policies
  // the identical table layout, so the phases compare filter choice,
  // not table count.
  db->CompactAll();
  return db;
}

}  // namespace
}  // namespace bloomrf

int main(int argc, char** argv) {
  using namespace bloomrf;

  bool smoke = false;
  std::string out_path = "BENCH_adaptive.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const uint64_t keys = smoke ? 80'000 : 400'000;
  const uint64_t point_queries = smoke ? 60'000 : 300'000;
  // Wide ranges reject in-filter at several Mops; the count keeps a
  // timed pass well above timer resolution on the full run.
  const uint64_t wide_queries = smoke ? 8'192 : 65'536;
  const uint64_t zipf_queries = smoke ? 40'000 : 200'000;
  std::printf("adaptive_filters: %" PRIu64 " keys%s\n", keys,
              smoke ? " (smoke)" : "");

  Dataset data = MakeDataset(keys, Distribution::kUniform, 0xada);
  std::vector<PhaseWorkload> phases;
  phases.push_back(MakePointPhase(data, point_queries));
  phases.push_back(MakeWidePhase(wide_queries));
  phases.push_back(MakeZipfPhase(data, zipf_queries));
  // Warmup streams for the adaptive engine: a quarter-size draw of the
  // same mix teaches the sampler without contaminating the timed run.
  std::vector<PhaseWorkload> warmups;
  warmups.push_back(MakePointPhase(data, point_queries / 4));
  warmups.push_back(MakeWidePhase(wide_queries / 4));
  warmups.push_back(MakeZipfPhase(data, zipf_queries / 4));

  const std::string base_dir = "/tmp/bloomrf_bench_adaptive";
  std::filesystem::remove_all(base_dir);

  // ---- Engines ------------------------------------------------------
  struct StaticPolicy {
    std::string name;
    std::shared_ptr<FilterPolicy> policy;
  };
  std::vector<StaticPolicy> statics;
  statics.push_back({"static_bloomrf", NewBloomRFPolicy(16.0, 1 << 20)});
  FilterBuildParams bb;
  bb.bits_per_key = 16.0;
  statics.push_back({"static_blocked_bloom",
                     NewRegistryPolicy("blocked_bloom", bb)});
  statics.push_back({"static_rosetta", NewRosettaPolicy(16.0, 1 << 8)});

  std::vector<std::unique_ptr<Db>> static_dbs;
  for (const StaticPolicy& s : statics) {
    static_dbs.push_back(MakeDb(base_dir + "/" + s.name, s.policy, data));
  }
  auto adaptive_policy = NewAdaptiveFilterPolicy({.bits_per_key = 16.0});
  AdaptiveFilterPolicy* adaptive = adaptive_policy.get();
  auto adaptive_db =
      MakeDb(base_dir + "/adaptive", std::move(adaptive_policy), data);

  // ---- Phase sweep ---------------------------------------------------
  // Phase-major, engines interleaved best-of-N: every repetition runs
  // all four engines back to back, so machine-state drift (page cache,
  // CPU clocks, a noisy neighbor) hits everyone in the same rep and
  // the per-phase ratios compare like with like.
  // Best-of-4: the noise is one-sided (stalls), so per-engine bests
  // converge upward to the true speed; "best static" is a max over
  // three engines and needs every engine's best to have converged.
  const int kReps = 4;
  std::vector<std::map<std::string, double>> mops(phases.size());
  std::vector<std::string> adaptive_backend(phases.size());
  for (size_t p = 0; p < phases.size(); ++p) {
    // The re-tune: observe the new mix, then rebuild the tree's
    // filters under the resulting plan.
    adaptive_db->workload_sampler()->Reset();
    RunPhaseOnce(adaptive_db.get(), warmups[p]);
    if (!adaptive_db->CompactAll()) {
      std::fprintf(stderr, "CompactAll failed in phase %s\n",
                   phases[p].name.c_str());
      return 1;
    }
    adaptive_backend[p] = adaptive->LastPlan().backend;
    for (int rep = 0; rep < kReps; ++rep) {
      for (size_t s = 0; s < statics.size(); ++s) {
        double& cell = mops[p][statics[s].name];
        cell = std::max(cell, RunPhaseOnce(static_dbs[s].get(), phases[p]));
      }
      double& cell = mops[p]["adaptive"];
      cell = std::max(cell, RunPhaseOnce(adaptive_db.get(), phases[p]));
    }
    for (const StaticPolicy& s : statics) {
      std::printf("%-22s %-6s %7.3f Mops\n", s.name.c_str(),
                  phases[p].name.c_str(), mops[p][s.name]);
    }
    std::printf("%-22s %-6s %7.3f Mops  (backend %s)\n", "adaptive",
                phases[p].name.c_str(), mops[p]["adaptive"],
                adaptive_backend[p].c_str());
  }
  static_dbs.clear();
  adaptive_db.reset();

  // ---- Sampler overhead on point Gets -------------------------------
  // Same engine shape, sampling off vs explicitly on, interleaved
  // best-of-3 so both sides see the same machine state.
  double sampler_off = 0, sampler_on = 0;
  {
    auto db_off = MakeDb(base_dir + "/sampler-off",
                         NewBloomRFPolicy(16.0, 1 << 20), data);
    auto db_on = MakeDb(base_dir + "/sampler-on",
                        NewBloomRFPolicy(16.0, 1 << 20), data,
                        /*sample=*/true);
    for (int run = 0; run < 4; ++run) {
      sampler_off =
          std::max(sampler_off, RunPhaseOnce(db_off.get(), phases[0]));
      sampler_on = std::max(sampler_on, RunPhaseOnce(db_on.get(), phases[0]));
    }
  }
  double sampler_ratio = sampler_off > 0 ? sampler_on / sampler_off : 0;
  std::printf("sampler overhead: Get off %7.3f Mops  on %7.3f Mops  "
              "(ratio %.3f)\n",
              sampler_off, sampler_on, sampler_ratio);
  std::filesystem::remove_all(base_dir);

  // ---- Ratios and JSON ----------------------------------------------
  std::vector<double> over_best(phases.size()), over_worst(phases.size());
  for (size_t p = 0; p < phases.size(); ++p) {
    double best = 0, worst = 1e300;
    for (const StaticPolicy& s : statics) {
      best = std::max(best, mops[p][s.name]);
      worst = std::min(worst, mops[p][s.name]);
    }
    over_best[p] = best > 0 ? mops[p]["adaptive"] / best : 0;
    over_worst[p] = worst > 0 ? mops[p]["adaptive"] / worst : 0;
    std::printf("phase %-6s adaptive/best %5.3f  adaptive/worst %5.3f\n",
                phases[p].name.c_str(), over_best[p], over_worst[p]);
  }
  double over_worst_max = *std::max_element(over_worst.begin(),
                                            over_worst.end());

  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"adaptive\",\n  \"smoke\": %s,\n"
               "  \"keys\": %" PRIu64 ",\n  \"phases\": [\n",
               smoke ? "true" : "false", keys);
  for (size_t p = 0; p < phases.size(); ++p) {
    std::fprintf(json,
                 "    {\"phase\": \"%s\", \"adaptive_mops\": %.3f, "
                 "\"adaptive_backend\": \"%s\",\n     \"static\": {",
                 phases[p].name.c_str(), mops[p]["adaptive"],
                 adaptive_backend[p].c_str());
    for (size_t s = 0; s < statics.size(); ++s) {
      std::fprintf(json, "\"%s\": %.3f%s", statics[s].name.c_str(),
                   mops[p][statics[s].name],
                   s + 1 < statics.size() ? ", " : "");
    }
    std::fprintf(json,
                 "},\n     \"adaptive_over_best\": %.3f, "
                 "\"adaptive_over_worst\": %.3f}%s\n",
                 over_best[p], over_worst[p],
                 p + 1 < phases.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"sampler\": {\"get_mops_off\": %.3f, "
               "\"get_mops_on\": %.3f, \"ratio\": %.3f},\n",
               sampler_off, sampler_on, sampler_ratio);
  // Floors capped at the acceptance bars (0.95 / 1.15 / 0.98): a
  // better measured run is reported, not demanded of every CI host.
  std::fprintf(json,
               "  \"guard\": {\"adaptive_over_best_point\": %.3f, "
               "\"adaptive_over_best_wide\": %.3f, "
               "\"adaptive_over_best_zipf\": %.3f, "
               "\"adaptive_over_worst_max\": %.3f, "
               "\"sampler_get_ratio\": %.3f}\n}\n",
               std::min(over_best[0], 0.95), std::min(over_best[1], 0.95),
               std::min(over_best[2], 0.95), std::min(over_worst_max, 1.15),
               std::min(sampler_ratio, 0.98));
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

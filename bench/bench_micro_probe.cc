// Micro-benchmarks (google-benchmark): single-operation cost of
// insert, point probe and range probe for bloomRF and the baselines —
// the per-probe CPU numbers underlying Fig. 12.G's breakdown.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "filters/bloom_filter.h"
#include "filters/rosetta.h"
#include "filters/surf/surf.h"
#include "workload/key_generator.h"

namespace bloomrf {
namespace {

constexpr uint64_t kKeys = 1'000'000;
constexpr double kBpk = 18.0;

const Dataset& SharedDataset() {
  static Dataset data = MakeDataset(kKeys, Distribution::kUniform, 0x3c0);
  return data;
}

void BM_BloomRF_Insert(benchmark::State& state) {
  const Dataset& data = SharedDataset();
  BloomRF filter(BloomRFConfig::Basic(kKeys, kBpk));
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(data.keys[i++ % data.keys.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomRF_Insert);

void BM_Bloom_Insert(benchmark::State& state) {
  const Dataset& data = SharedDataset();
  BloomFilter filter(kKeys, kBpk);
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(data.keys[i++ % data.keys.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bloom_Insert);

void BM_Rosetta_Insert(benchmark::State& state) {
  const Dataset& data = SharedDataset();
  Rosetta::Options options;
  options.expected_keys = kKeys;
  options.bits_per_key = kBpk;
  options.max_range = 1 << 10;
  Rosetta filter(options);
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(data.keys[i++ % data.keys.size()]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rosetta_Insert);

template <typename Filter>
std::unique_ptr<Filter> BuildLoaded();

template <>
std::unique_ptr<BloomRF> BuildLoaded() {
  AdvisorParams params;
  params.n = kKeys;
  params.total_bits = static_cast<uint64_t>(kBpk * kKeys);
  params.max_range = 1e6;
  auto filter = std::make_unique<BloomRF>(AdviseConfig(params).config);
  for (uint64_t k : SharedDataset().keys) filter->Insert(k);
  return filter;
}

void BM_BloomRF_PointProbe(benchmark::State& state) {
  static auto filter = BuildLoaded<BloomRF>();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->MayContain(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomRF_PointProbe);

void BM_BloomRF_RangeProbe(benchmark::State& state) {
  static auto filter = BuildLoaded<BloomRF>();
  Rng rng(2);
  uint64_t range = uint64_t{1} << static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + range - 1 > lo ? lo + range - 1 : lo;
    benchmark::DoNotOptimize(filter->MayContainRange(lo, hi));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomRF_RangeProbe)->Arg(4)->Arg(10)->Arg(20)->Arg(30);

void BM_Rosetta_RangeProbe(benchmark::State& state) {
  static auto filter = [] {
    Rosetta::Options options;
    options.expected_keys = kKeys;
    options.bits_per_key = kBpk;
    options.max_range = 1 << 14;
    auto f = std::make_unique<Rosetta>(options);
    for (uint64_t k : SharedDataset().keys) f->Insert(k);
    return f;
  }();
  Rng rng(3);
  uint64_t range = uint64_t{1} << static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + range - 1 > lo ? lo + range - 1 : lo;
    benchmark::DoNotOptimize(filter->MayContainRange(lo, hi));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Rosetta_RangeProbe)->Arg(4)->Arg(10)->Arg(14);

void BM_Surf_PointProbe(benchmark::State& state) {
  static auto filter = [] {
    Surf::Options options;
    options.suffix_type = SurfSuffixType::kHash;
    options.suffix_bits = 8;
    return std::make_unique<Surf>(
        Surf::BuildFromU64(SharedDataset().sorted_keys, options));
  }();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->MayContain(rng.Next()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Surf_PointProbe);

void BM_Surf_RangeProbe(benchmark::State& state) {
  static auto filter = [] {
    Surf::Options options;
    options.suffix_type = SurfSuffixType::kReal;
    options.suffix_bits = 8;
    return std::make_unique<Surf>(
        Surf::BuildFromU64(SharedDataset().sorted_keys, options));
  }();
  Rng rng(5);
  uint64_t range = uint64_t{1} << static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + range - 1 > lo ? lo + range - 1 : lo;
    benchmark::DoNotOptimize(filter->MayContainRange(lo, hi));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Surf_RangeProbe)->Arg(10)->Arg(30);

void BM_Hash_Mix64(benchmark::State& state) {
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hash_Mix64);

}  // namespace
}  // namespace bloomrf

BENCHMARK_MAIN();

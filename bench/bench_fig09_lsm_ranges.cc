// Figure 9: end-to-end range-query FPR and execution time in the
// mini-LSM store at 22 bits/key, uniformly distributed keys, for
// uniform / normal / zipfian *workload* distributions and query range
// sizes from 2 to 1e11 (A1-C1); point-query FPR per workload (A2-C2);
// Prefix-Bloom and fence-pointer latency (D).
//
// Backends are selected by FilterRegistry name (default the paper's
// bloomRF / Rosetta / SuRF cast; override with --filter=) and wired in
// through the one generic registry policy.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/lsm_bench_util.h"
#include "filters/registry.h"

using namespace bloomrf;
using namespace bloomrf::bench;

namespace {

// Registry-name policy tuned like the paper's Fig. 9 setup.
std::shared_ptr<FilterPolicy> MakePolicy(const std::string& name,
                                         double bits_per_key,
                                         uint64_t range) {
  FilterBuildParams params;
  params.bits_per_key = bits_per_key;
  params.max_range = static_cast<double>(range);
  params.prefix_level = 20;
  return NewRegistryPolicy(name, params);
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 200'000, 5'000, /*filter_aware=*/true);
  Header("Fig. 9", "LSM range/point queries at 22 bits/key", scale);
  const double kBitsPerKey = 22.0;
  std::vector<std::string> contenders =
      FiltersOrDefault(scale, {"bloomrf", "rosetta", "surf"});

  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0xf19);
  std::vector<uint64_t> ranges = {2,       16,        64,       1000,
                                  100000,  10000000,  1000000000ULL,
                                  100000000000ULL};

  for (Distribution workload_dist :
       {Distribution::kUniform, Distribution::kNormal,
        Distribution::kZipfian}) {
    std::printf("\n[workload=%s] range queries (FPR | seconds)\n",
                DistributionName(workload_dist));
    std::printf("%-14s", "range");
    for (const std::string& name : contenders) {
      std::printf(" %-22s", name.c_str());
    }
    std::printf("\n");
    std::vector<double> point_fpr(contenders.size(), 0.0);
    for (uint64_t range : ranges) {
      QueryWorkload workload = MakeQueryWorkload(
          data, scale.queries, range, workload_dist, 0x91e + range);
      std::printf("%-14llu", static_cast<unsigned long long>(range));
      for (size_t c = 0; c < contenders.size(); ++c) {
        LsmRunResult result = RunLsmWorkload(
            data, MakePolicy(contenders[c], kBitsPerKey, range), workload,
            "/tmp/bench_fig09_" + contenders[c]);
        std::printf(" %8.4f | %9.3fs", result.range_fpr,
                    result.range_seconds);
        if (range == 64) {  // point panel uses moderate-range filters
          point_fpr[c] = result.point_fpr;
        }
      }
      std::printf("\n");
    }
    std::printf("(A2/B2/C2) point-query FPR:");
    for (size_t c = 0; c < contenders.size(); ++c) {
      std::printf(" %s=%.6f", contenders[c].c_str(), point_fpr[c]);
    }
    std::printf("\n");
  }

  // (D) Prefix Bloom filters and fence pointers, uniform workload.
  std::printf("\n(D) PrefixBloom / FencePointers latency (uniform)\n");
  std::printf("%-14s %-24s %-24s\n", "range", "prefix_bloom(fpr|s)",
              "fence_pointers(fpr|s)");
  for (uint64_t range : ranges) {
    QueryWorkload workload = MakeQueryWorkload(data, scale.queries, range,
                                               Distribution::kUniform,
                                               0xd00 + range);
    LsmRunResult prefix = RunLsmWorkload(
        data, MakePolicy("prefix_bloom", kBitsPerKey, range), workload,
        "/tmp/bench_fig09_pb");
    FilterBuildParams fence_params;
    fence_params.bits_per_key = 4.0;
    LsmRunResult fence = RunLsmWorkload(
        data, NewRegistryPolicy("fence_pointers", fence_params), workload,
        "/tmp/bench_fig09_fp");
    std::printf("%-14llu %8.4f | %9.3fs    %8.4f | %9.3fs\n",
                static_cast<unsigned long long>(range), prefix.range_fpr,
                prefix.range_seconds, fence.range_fpr, fence.range_seconds);
  }
  std::printf("\nShape check (paper): bloomRF lowest latency overall and "
              "lowest FPR for most\nranges; Rosetta best at |R|<=8; SuRF "
              "takes over at |R|~1e11; Rosetta degrades\nwith range size; "
              "point FPR: Rosetta < bloomRF < SuRF.\n");
  return 0;
}

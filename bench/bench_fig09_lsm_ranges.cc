// Figure 9: end-to-end range-query FPR and execution time in the
// mini-LSM store at 22 bits/key, uniformly distributed keys, for
// uniform / normal / zipfian *workload* distributions and query range
// sizes from 2 to 1e11 (A1-C1); point-query FPR per workload (A2-C2);
// Prefix-Bloom and fence-pointer latency (D).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/lsm_bench_util.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 200'000, 5'000);
  Header("Fig. 9", "LSM range/point queries at 22 bits/key", scale);
  const double kBitsPerKey = 22.0;

  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0xf19);
  std::vector<uint64_t> ranges = {2,       16,        64,       1000,
                                  100000,  10000000,  1000000000ULL,
                                  100000000000ULL};

  for (Distribution workload_dist :
       {Distribution::kUniform, Distribution::kNormal,
        Distribution::kZipfian}) {
    std::printf("\n[workload=%s] range queries (FPR | seconds)\n",
                DistributionName(workload_dist));
    std::printf("%-14s %-22s %-22s %-22s\n", "range", "bloomRF", "Rosetta",
                "SuRF");
    double point_fpr[3] = {0, 0, 0};
    for (uint64_t range : ranges) {
      QueryWorkload workload = MakeQueryWorkload(
          data, scale.queries, range, workload_dist, 0x91e + range);
      LsmRunResult ours = RunLsmWorkload(
          data, NewBloomRFPolicy(kBitsPerKey, static_cast<double>(range)),
          workload, "/tmp/bench_fig09_brf");
      LsmRunResult rosetta = RunLsmWorkload(
          data, NewRosettaPolicy(kBitsPerKey, range), workload,
          "/tmp/bench_fig09_ros");
      LsmRunResult surf = RunLsmWorkload(data, NewSurfPolicy(2, 8), workload,
                                         "/tmp/bench_fig09_surf");
      std::printf("%-14llu %8.4f | %9.3fs %8.4f | %9.3fs %8.4f | %9.3fs\n",
                  static_cast<unsigned long long>(range), ours.range_fpr,
                  ours.range_seconds, rosetta.range_fpr,
                  rosetta.range_seconds, surf.range_fpr, surf.range_seconds);
      if (range == 64) {  // point panel uses moderate-range filters
        point_fpr[0] = ours.point_fpr;
        point_fpr[1] = rosetta.point_fpr;
        point_fpr[2] = surf.point_fpr;
      }
    }
    std::printf("(A2/B2/C2) point-query FPR: bloomRF=%.6f Rosetta=%.6f "
                "SuRF=%.6f\n",
                point_fpr[0], point_fpr[1], point_fpr[2]);
  }

  // (D) Prefix Bloom filters and fence pointers, uniform workload.
  std::printf("\n(D) PrefixBloom / FencePointers latency (uniform)\n");
  std::printf("%-14s %-24s %-24s\n", "range", "PrefixBloom(fpr|s)",
              "Fence(fpr|s)");
  for (uint64_t range : ranges) {
    QueryWorkload workload = MakeQueryWorkload(data, scale.queries, range,
                                               Distribution::kUniform,
                                               0xd00 + range);
    LsmRunResult prefix = RunLsmWorkload(
        data, NewPrefixBloomPolicy(kBitsPerKey, 20), workload,
        "/tmp/bench_fig09_pb");
    LsmRunResult fence = RunLsmWorkload(
        data, NewFencePointerPolicy(4.0), workload, "/tmp/bench_fig09_fp");
    std::printf("%-14llu %8.4f | %9.3fs    %8.4f | %9.3fs\n",
                static_cast<unsigned long long>(range), prefix.range_fpr,
                prefix.range_seconds, fence.range_fpr, fence.range_seconds);
  }
  std::printf("\nShape check (paper): bloomRF lowest latency overall and "
              "lowest FPR for most\nranges; Rosetta best at |R|<=8; SuRF "
              "takes over at |R|~1e11; Rosetta degrades\nwith range size; "
              "point FPR: Rosetta < bloomRF < SuRF.\n");
  return 0;
}

// Figure 10: space-budget sweep in the mini-LSM store. Small (8/16/32),
// medium (1e4/1e5/1e6) and large (1e9/1e10/1e11) ranges at 10-22
// bits/key, plus point-query FPR panels including a plain Bloom filter.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/lsm_bench_util.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 150'000, 4'000);
  Header("Fig. 10", "LSM FPR/latency vs bits/key", scale);

  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0xf10);
  std::vector<double> budgets = {10, 14, 18, 22};
  std::vector<uint64_t> ranges = {8,          32,         100000,
                                  1000000,    1000000000ULL,
                                  100000000000ULL};

  for (uint64_t range : ranges) {
    std::printf("\n[range=%llu] FPR (seconds) per bits/key\n",
                static_cast<unsigned long long>(range));
    std::printf("%-8s %-22s %-22s %-22s\n", "bpk", "bloomRF", "Rosetta",
                "SuRF");
    QueryWorkload workload = MakeQueryWorkload(
        data, scale.queries, range, Distribution::kUniform, 0xa7 + range);
    for (double bpk : budgets) {
      LsmRunResult ours = RunLsmWorkload(
          data, NewBloomRFPolicy(bpk, static_cast<double>(range)), workload,
          "/tmp/bench_fig10_brf");
      LsmRunResult rosetta =
          RunLsmWorkload(data, NewRosettaPolicy(bpk, range), workload,
                         "/tmp/bench_fig10_ros");
      // SuRF's size is structural; suffix bits emulate the budget knob.
      uint32_t suffix_bits =
          bpk <= 12 ? 0 : (bpk <= 16 ? 4 : 8);
      LsmRunResult surf = RunLsmWorkload(
          data, NewSurfPolicy(2, suffix_bits), workload,
          "/tmp/bench_fig10_surf");
      std::printf("%-8.0f %8.4f (%6.2fs)   %8.4f (%6.2fs)   %8.4f (%6.2fs)\n",
                  bpk, ours.range_fpr, ours.range_seconds, rosetta.range_fpr,
                  rosetta.range_seconds, surf.range_fpr, surf.range_seconds);
    }
  }

  // Point-query FPR vs bits/key, incl. plain Bloom filter baseline.
  std::printf("\n[point queries] FPR per bits/key (uniform workload)\n");
  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "bpk", "bloomRF", "Rosetta",
              "SuRF", "Bloom");
  QueryWorkload workload = MakeQueryWorkload(data, scale.queries, 1,
                                             Distribution::kUniform, 0xb3);
  for (double bpk : budgets) {
    LsmRunResult ours = RunLsmWorkload(data, NewBloomRFPolicy(bpk, 1e6),
                                       workload, "/tmp/bench_fig10_p1");
    LsmRunResult rosetta = RunLsmWorkload(
        data, NewRosettaPolicy(bpk, 1 << 10), workload, "/tmp/bench_fig10_p2");
    LsmRunResult surf = RunLsmWorkload(
        data, NewSurfPolicy(1, bpk <= 12 ? 4 : 8), workload,
        "/tmp/bench_fig10_p3");
    LsmRunResult bloom = RunLsmWorkload(data, NewBloomPolicy(bpk), workload,
                                        "/tmp/bench_fig10_p4");
    std::printf("%-8.0f %-12.6f %-12.6f %-12.6f %-12.6f\n", bpk,
                ours.point_fpr, rosetta.point_fpr, surf.point_fpr,
                bloom.point_fpr);
  }
  std::printf("\nShape check (paper): bloomRF dominates across budgets; "
              "competitive with\nRosetta only losing at tiny ranges with "
              ">=18 bpk; SuRF wins only at |R|~1e11;\nbloomRF point FPR "
              "beats the plain BF (error-correction), Rosetta's bottom\n"
              "filter is the point-query winner.\n");
  return 0;
}

// Planned/batched probe throughput vs the scalar loop, plus batched
// LSM MultiGet vs N×Get with the shared block cache.
//
// Point probes: for each online backend (bloomRF, Bloom, BlockedBloom,
// PrefixBloom, Cuckoo), probes the same query mix through the scalar
// virtual loop and through the SIMD lane-group MayContainBatch in
// chunks, and reports Mops + speedup. Range probes: every
// range-capable backend (bloomRF's lockstep-planned descent, Rosetta,
// PrefixBloom, SuRF) through MayContainRangeBatch vs the scalar
// MayContainRange loop. LSM: a multi-SST store probed key-at-a-time vs
// MultiGet, then a second MultiGet pass over the same keys to show
// block-cache hits.
//
// Defaults build a filter well past L2 size (8M keys at 20 bits/key
// = 20 MB for bloomRF) so the prefetch pipeline, not the cache, is
// measured. Writes BENCH_batch_probe.json (override with --out=PATH)
// including the detected `simd` dispatch level and conservative
// `guard` floors (0.8x of this run's measured bloomRF speedups) that
// the CI perf-guard step compares its own smoke run against; --smoke
// shrinks everything for CI. Guard floors in the committed JSON come
// from a full-scale run, so refresh them (rerun this bench) when
// moving to hardware with a very different cache hierarchy.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "filters/registry.h"
#include "lsm/db.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/timer.h"

namespace bloomrf {
namespace {

using bench::Mops;

constexpr size_t kBatchChunk = 4096;

struct PointResult {
  std::string name;
  double scalar_mops = 0;
  double batch_mops = 0;
  double speedup = 0;
};

// 50% inserted keys / 50% uniform random probes, shuffled.
std::vector<uint64_t> MakeQueryMix(const std::vector<uint64_t>& keys,
                                   uint64_t queries, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out;
  out.reserve(queries);
  for (uint64_t q = 0; q < queries; ++q) {
    out.push_back((q & 1) ? keys[rng.Uniform(keys.size())] : rng.Next());
  }
  for (size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.Uniform(i)]);
  }
  return out;
}

PointResult BenchPointBackend(const std::string& name,
                              const std::vector<uint64_t>& keys,
                              const std::vector<uint64_t>& queries,
                              double bits_per_key) {
  const FilterRegistry::Entry* entry = FilterRegistry::Instance().Find(name);
  FilterBuildParams params;
  params.expected_keys = keys.size();
  params.bits_per_key = bits_per_key;
  auto filter = entry->build_online(params);
  for (uint64_t k : keys) filter->Insert(k);

  PointResult result;
  result.name = name;

  // Best of two timed runs per mode: the first run doubles as warmup,
  // and taking the max Mops trims one-sided scheduler noise equally
  // from both sides of the speedup ratio.
  uint64_t scalar_positives = 0;
  Timer timer;
  for (int run = 0; run < 2; ++run) {
    // Scalar: one virtual MayContain per key, the pre-PR hot loop.
    scalar_positives = 0;
    timer.Restart();
    for (uint64_t q : queries) scalar_positives += filter->MayContain(q);
    result.scalar_mops =
        std::max(result.scalar_mops, Mops(queries.size(), timer.ElapsedSeconds()));
  }

  // Batched: plan + prefetch + SIMD probe, one chunk at a time.
  auto out = std::make_unique<bool[]>(kBatchChunk);
  uint64_t batch_positives = 0;
  for (int run = 0; run < 2; ++run) {
    batch_positives = 0;
    timer.Restart();
    for (size_t base = 0; base < queries.size(); base += kBatchChunk) {
      size_t n = std::min(kBatchChunk, queries.size() - base);
      filter->MayContainBatch({queries.data() + base, n}, out.get());
      for (size_t j = 0; j < n; ++j) batch_positives += out[j];
    }
    result.batch_mops =
        std::max(result.batch_mops, Mops(queries.size(), timer.ElapsedSeconds()));
  }
  result.speedup =
      result.scalar_mops > 0 ? result.batch_mops / result.scalar_mops : 0;

  if (scalar_positives != batch_positives) {
    std::fprintf(stderr, "BUG: %s scalar/batch disagree (%" PRIu64
                 " vs %" PRIu64 ")\n",
                 name.c_str(), scalar_positives, batch_positives);
    std::exit(1);
  }
  std::printf("  %-14s scalar %7.2f Mops   batched %7.2f Mops   %.2fx\n",
              name.c_str(), result.scalar_mops, result.batch_mops,
              result.speedup);
  return result;
}

struct RangeResult {
  std::string name;
  double scalar_mops = 0;
  double batch_mops = 0;
  double speedup = 0;
};

RangeResult BenchRangeBackend(const std::string& name,
                              const std::vector<uint64_t>& keys,
                              const std::vector<uint64_t>& sorted_keys,
                              const std::vector<uint64_t>& los,
                              const std::vector<uint64_t>& his,
                              double bits_per_key, double max_range) {
  const FilterRegistry::Entry* entry = FilterRegistry::Instance().Find(name);
  FilterBuildParams params;
  params.expected_keys = keys.size();
  params.bits_per_key = bits_per_key;
  params.max_range = max_range;
  std::unique_ptr<PointRangeFilter> filter;
  if (entry->online) {
    auto online = entry->build_online(params);
    for (uint64_t k : keys) online->Insert(k);
    filter = std::move(online);
  } else {
    filter = entry->build_from_sorted_keys(sorted_keys, params);
  }

  RangeResult result;
  result.name = name;

  // Best of three timed runs per mode (see BenchPointBackend; the
  // slow trie/doubting backends need the extra rep for a stable max).
  uint64_t scalar_positives = 0;
  Timer timer;
  for (int run = 0; run < 3; ++run) {
    scalar_positives = 0;
    timer.Restart();
    for (size_t q = 0; q < los.size(); ++q) {
      scalar_positives += filter->MayContainRange(los[q], his[q]);
    }
    result.scalar_mops =
        std::max(result.scalar_mops, Mops(los.size(), timer.ElapsedSeconds()));
  }

  auto out = std::make_unique<bool[]>(kBatchChunk);
  uint64_t batch_positives = 0;
  for (int run = 0; run < 3; ++run) {
    batch_positives = 0;
    timer.Restart();
    for (size_t base = 0; base < los.size(); base += kBatchChunk) {
      size_t n = std::min(kBatchChunk, los.size() - base);
      filter->MayContainRangeBatch({los.data() + base, n},
                                   {his.data() + base, n}, out.get());
      for (size_t j = 0; j < n; ++j) batch_positives += out[j];
    }
    result.batch_mops =
        std::max(result.batch_mops, Mops(los.size(), timer.ElapsedSeconds()));
  }
  result.speedup =
      result.scalar_mops > 0 ? result.batch_mops / result.scalar_mops : 0;

  if (scalar_positives != batch_positives) {
    std::fprintf(stderr, "BUG: %s range scalar/batch disagree (%" PRIu64
                 " vs %" PRIu64 ")\n",
                 name.c_str(), scalar_positives, batch_positives);
    std::exit(1);
  }
  std::printf("  %-14s scalar %7.2f Mops   batched %7.2f Mops   %.2fx\n",
              name.c_str(), result.scalar_mops, result.batch_mops,
              result.speedup);
  return result;
}

}  // namespace
}  // namespace bloomrf

int main(int argc, char** argv) {
  using namespace bloomrf;
  bool smoke = false;
  std::string out_path = "BENCH_batch_probe.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bench::Scale scale = bench::ParseScale(argc, argv, /*default_keys=*/8'000'000,
                                         /*default_queries=*/2'000'000,
                                         /*filter_aware=*/true);
  if (smoke) {
    // Large enough that the bloomRF filter (5 MB) escapes L2 on any
    // current server core — below that the planned engines measure
    // pure overhead and the CI perf guard would compare noise.
    scale.keys = 2'000'000;
    scale.queries = 250'000;
  }
  bench::Header("batch_probe",
                "planned/batched probes vs scalar loop; LSM MultiGet", scale);

  Rng rng(0xba7c4);
  std::vector<uint64_t> keys;
  keys.reserve(scale.keys);
  for (uint64_t i = 0; i < scale.keys; ++i) keys.push_back(rng.Next());
  std::vector<uint64_t> queries = MakeQueryMix(keys, scale.queries, 0x9e1);

  // ---- Point probes per backend --------------------------------------
  const double bits_per_key = 20.0;
  std::printf("point probes (%" PRIu64 " keys, %" PRIu64
              " queries, %.0f bits/key, simd=%s):\n",
              scale.keys, scale.queries, bits_per_key,
              SimdLevelName(ActiveSimdLevel()));
  std::vector<PointResult> point_results;
  for (const std::string& name : bench::FiltersOrDefault(
           scale,
           {"bloomrf", "bloom", "blocked_bloom", "prefix_bloom", "cuckoo"})) {
    const FilterRegistry::Entry* entry = FilterRegistry::Instance().Find(name);
    if (entry == nullptr || !entry->online) continue;
    point_results.push_back(
        BenchPointBackend(name, keys, queries, bits_per_key));
  }

  // ---- Range probes per range-capable backend ------------------------
  const uint64_t range_queries = std::max<uint64_t>(scale.queries / 8, 1000);
  const uint64_t range_width = uint64_t{1} << 12;
  std::vector<uint64_t> los, his;
  los.reserve(range_queries);
  his.reserve(range_queries);
  for (uint64_t q = 0; q < range_queries; ++q) {
    uint64_t anchor =
        (q & 1) ? keys[rng.Uniform(keys.size())] : rng.Next();
    uint64_t lo = anchor - std::min(anchor, rng.Uniform(range_width));
    los.push_back(lo);
    his.push_back(lo + range_width < lo ? UINT64_MAX : lo + range_width);
  }
  std::vector<uint64_t> sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  sorted_keys.erase(std::unique(sorted_keys.begin(), sorted_keys.end()),
                    sorted_keys.end());
  std::printf("range probes (width 2^12, %" PRIu64 " queries):\n",
              range_queries);
  std::vector<RangeResult> range_results;
  for (const std::string& name : bench::FiltersOrDefault(
           scale, {"bloomrf", "rosetta", "prefix_bloom", "surf"})) {
    const FilterRegistry::Entry* entry = FilterRegistry::Instance().Find(name);
    if (entry == nullptr || !entry->supports_ranges) continue;
    range_results.push_back(
        BenchRangeBackend(name, keys, sorted_keys, los, his, bits_per_key,
                          static_cast<double>(range_width) * 4));
  }
  Timer timer;

  // ---- LSM MultiGet vs N×Get -----------------------------------------
  const uint64_t db_keys = std::min<uint64_t>(scale.keys, 400'000);
  const uint64_t db_queries = std::min<uint64_t>(scale.queries, 200'000);
  std::string dir = "/tmp/bloomrf_bench_batch_probe";
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.dir = dir;
  options.filter_policy = NewBloomRFPolicy(18.0, 1e6);
  options.memtable_bytes = 1 << 20;  // several SSTs
  // Size the cache for the store so the warm pass measures cache-served
  // reads rather than LRU scan-thrash.
  options.block_cache_bytes = 64 << 20;
  Db db(options);
  for (uint64_t i = 0; i < db_keys; ++i) {
    db.Put(keys[i], "0123456789abcdef");
  }
  db.Flush();
  std::vector<uint64_t> db_probe = MakeQueryMix(
      {keys.begin(), keys.begin() + static_cast<long>(db_keys)}, db_queries,
      0x9e2);

  // Warm the block cache with one untimed pass, so both timed passes
  // run at the same cache residency and the difference measures
  // batching (one filter probe per batch, one parse per block), not
  // who paid the cold misses.
  std::string value;
  for (uint64_t q : db_probe) (void)db.Get(q, &value);

  uint64_t get_hits = 0;
  timer.Restart();
  for (uint64_t q : db_probe) get_hits += db.Get(q, &value);
  double get_mops = Mops(db_probe.size(), timer.ElapsedSeconds());

  timer.Restart();
  auto mg = db.MultiGet(db_probe);
  double multiget_mops = Mops(db_probe.size(), timer.ElapsedSeconds());
  uint64_t mg_hits = 0;
  for (const auto& v : mg) mg_hits += v.has_value();
  if (mg_hits != get_hits) {
    std::fprintf(stderr, "BUG: MultiGet/Get disagree\n");
    return 1;
  }

  // Once more with stats reset, to report the steady-state hit rate.
  db.ResetStats();
  timer.Restart();
  (void)db.MultiGet(db_probe);
  double multiget_warm_mops = Mops(db_probe.size(), timer.ElapsedSeconds());
  const LsmStats& stats = db.stats();
  double cache_hit_rate =
      stats.block_cache_hits + stats.block_cache_misses > 0
          ? static_cast<double>(stats.block_cache_hits) /
                static_cast<double>(stats.block_cache_hits +
                                    stats.block_cache_misses)
          : 0;
  double lsm_speedup = get_mops > 0 ? multiget_mops / get_mops : 0;
  std::printf("lsm (%" PRIu64 " keys, %zu tables, %" PRIu64
              " probes, cache pre-warmed): Get %.2f Mops   MultiGet %.2f "
              "Mops (%.2fx)   repeat MultiGet %.2f Mops (cache hit rate "
              "%.2f)\n",
              db_keys, db.num_tables(), db_queries, get_mops, multiget_mops,
              lsm_speedup, multiget_warm_mops, cache_hit_rate);
  std::filesystem::remove_all(dir);

  // ---- JSON ----------------------------------------------------------
  std::FILE* json = std::fopen(out_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"batch_probe\",\n  \"smoke\": %s,\n"
               "  \"simd\": \"%s\",\n"
               "  \"keys\": %" PRIu64 ",\n  \"queries\": %" PRIu64 ",\n"
               "  \"bits_per_key\": %.1f,\n  \"point\": [\n",
               smoke ? "true" : "false", SimdLevelName(ActiveSimdLevel()),
               scale.keys, scale.queries, bits_per_key);
  for (size_t i = 0; i < point_results.size(); ++i) {
    const PointResult& r = point_results[i];
    std::fprintf(json,
                 "    {\"filter\": \"%s\", \"scalar_mops\": %.3f, "
                 "\"batch_mops\": %.3f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.scalar_mops, r.batch_mops, r.speedup,
                 i + 1 < point_results.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n  \"range\": [\n");
  for (size_t i = 0; i < range_results.size(); ++i) {
    const RangeResult& r = range_results[i];
    std::fprintf(json,
                 "    {\"filter\": \"%s\", \"scalar_mops\": %.3f, "
                 "\"batch_mops\": %.3f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.scalar_mops, r.batch_mops, r.speedup,
                 i + 1 < range_results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"lsm\": {\"db_keys\": %" PRIu64 ", \"tables\": %zu, "
               "\"get_mops\": %.3f, \"multiget_mops\": %.3f, "
               "\"speedup\": %.3f, \"warm_multiget_mops\": %.3f, "
               "\"warm_cache_hit_rate\": %.3f},\n",
               db_keys, db.num_tables(), get_mops, multiget_mops, lsm_speedup,
               multiget_warm_mops, cache_hit_rate);
  // Conservative floors (0.8x of this run's measured bloomRF speedups)
  // for the CI perf-guard step: scripts/perf_guard.py fails the
  // release-perf job when a smoke run drops below 0.9x of these.
  double guard_point = 0, guard_range = 0;
  for (const PointResult& r : point_results) {
    if (r.name == "bloomrf") guard_point = r.speedup * 0.8;
  }
  for (const RangeResult& r : range_results) {
    if (r.name == "bloomrf") guard_range = r.speedup * 0.8;
  }
  std::fprintf(json,
               "  \"guard\": {\"bloomrf_point_speedup\": %.3f, "
               "\"bloomrf_range_speedup\": %.3f}\n}\n",
               guard_point, guard_range);
  std::fclose(json);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

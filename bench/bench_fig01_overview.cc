// Figure 1: the positioning overview — which filter has the best FPR
// per (bits/key, number-of-keys) cell for small/medium/large ranges,
// normal data and query distribution, standalone. A flattened version
// of Fig. 11.E averaged over key counts.
//
// Contenders come from the FilterRegistry: default bloomRF / Rosetta /
// SuRF (the paper's Fig. 1 cast), overridable with --filter=.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/standalone_bench_util.h"
#include "filters/registry.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 100'000, 3'000, /*filter_aware=*/true);
  Header("Fig. 1", "best-FPR positioning map (normal data/queries)", scale);
  std::vector<std::string> contenders =
      FiltersOrDefault(scale, {"bloomrf", "rosetta", "surf"});
  auto& registry = FilterRegistry::Instance();
  // This is a *range*-FPR positioning map: point-only backends answer
  // every range probe with true (FPR 1.0) and cannot meaningfully win.
  for (auto it = contenders.begin(); it != contenders.end();) {
    if (!registry.Find(*it)->supports_ranges) {
      std::printf("note: %s is point-only; excluded from the range map\n",
                  it->c_str());
      it = contenders.erase(it);
    } else {
      ++it;
    }
  }
  if (contenders.empty()) {
    std::fprintf(stderr, "no range-capable contenders selected\n");
    return 1;
  }

  struct RangeClass {
    const char* name;
    uint64_t size;
  };
  std::vector<RangeClass> classes = {
      {"small(32)", 32}, {"medium(1e5)", 100'000},
      {"large(1e9)", 1'000'000'000ULL}};
  std::vector<uint64_t> key_counts = {1'000, 10'000, scale.keys};
  std::vector<double> budgets = {8, 10, 12, 14, 16, 18, 20, 22};

  // Column width that fits the longest selected display name.
  int col = 10;
  for (const std::string& name : contenders) {
    int len = static_cast<int>(registry.Find(name)->display_name.size()) + 1;
    if (len > col) col = len;
  }

  for (const RangeClass& rc : classes) {
    std::printf("\n[%s] winner per (keys x bits/key)\n%-10s", rc.name,
                "keys\\bpk");
    for (double bpk : budgets) std::printf("%*.0f", col, bpk);
    std::printf("\n");
    for (uint64_t n : key_counts) {
      std::printf("%-10llu", static_cast<unsigned long long>(n));
      Dataset data = MakeDataset(n, Distribution::kNormal, 0xf01 + n);
      QueryWorkload workload = MakeQueryWorkload(
          data, scale.queries, rc.size, Distribution::kNormal, 0x0f + rc.size);
      for (double bpk : budgets) {
        // Build every contender through its registry factory and keep
        // the lowest empty-range FPR. Online filters are budget-sized
        // by construction and always compete; offline structures
        // (SuRF, fences) may overshoot the budget and are dropped
        // beyond 2 bits/key slack, as the paper does for SuRF.
        const char* winner = "-";
        double best_fpr = 2.0;
        for (const std::string& name : contenders) {
          const FilterRegistry::Entry* entry = registry.Find(name);
          FilterBuildParams params;
          params.bits_per_key = bpk;
          params.max_range = static_cast<double>(rc.size);
          params.suffix_bits = bpk <= 12 ? 4 : 8;
          std::unique_ptr<PointRangeFilter> filter =
              entry->build_from_sorted_keys(data.sorted_keys, params);
          if (filter == nullptr) continue;
          double actual_bpk = static_cast<double>(filter->MemoryBits()) /
                              static_cast<double>(n);
          if (!entry->online && actual_bpk > bpk + 2.0) continue;
          uint64_t fp = 0, empties = 0;
          for (const RangeQuery& q : workload.range_queries) {
            if (!q.empty) continue;
            ++empties;
            if (filter->MayContainRange(q.lo, q.hi)) ++fp;
          }
          double fpr =
              empties ? static_cast<double>(fp) / empties : 0.0;
          if (fpr < best_fpr) {
            best_fpr = fpr;
            winner = entry->display_name.c_str();
          }
        }
        std::printf("%*s", col, winner);
      }
      std::printf("\n");
    }
  }
  std::printf("\nShape check (paper Fig. 1): Rosetta band at small ranges/"
              "high budgets,\nSuRF band at large ranges, bloomRF covering "
              "the broad middle.\n");
  return 0;
}

// Figure 1: the positioning overview — which filter has the best FPR
// per (bits/key, number-of-keys) cell for small/medium/large ranges,
// normal data and query distribution, standalone. A flattened version
// of Fig. 11.E averaged over key counts.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/standalone_bench_util.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 100'000, 3'000);
  Header("Fig. 1", "best-FPR positioning map (normal data/queries)", scale);

  struct RangeClass {
    const char* name;
    uint64_t size;
  };
  std::vector<RangeClass> classes = {
      {"small(32)", 32}, {"medium(1e5)", 100'000},
      {"large(1e9)", 1'000'000'000ULL}};
  std::vector<uint64_t> key_counts = {1'000, 10'000, scale.keys};
  std::vector<double> budgets = {8, 10, 12, 14, 16, 18, 20, 22};

  for (const RangeClass& rc : classes) {
    std::printf("\n[%s] winner per (keys x bits/key)\n%-10s", rc.name,
                "keys\\bpk");
    for (double bpk : budgets) std::printf("%10.0f", bpk);
    std::printf("\n");
    for (uint64_t n : key_counts) {
      std::printf("%-10llu", static_cast<unsigned long long>(n));
      Dataset data = MakeDataset(n, Distribution::kNormal, 0xf01 + n);
      QueryWorkload workload = MakeQueryWorkload(
          data, scale.queries, rc.size, Distribution::kNormal, 0x0f + rc.size);
      for (double bpk : budgets) {
        StandaloneContenders c = BuildContenders(data, bpk, rc.size);
        auto probe_fpr = [&](auto&& fn) {
          uint64_t fp = 0, empties = 0;
          for (const RangeQuery& q : workload.range_queries) {
            if (!q.empty) continue;
            ++empties;
            if (fn(q.lo, q.hi)) ++fp;
          }
          return empties ? static_cast<double>(fp) / empties : 0.0;
        };
        double ours = probe_fpr([&](uint64_t lo, uint64_t hi) {
          return c.bloomrf->MayContainRange(lo, hi);
        });
        double rosetta = probe_fpr([&](uint64_t lo, uint64_t hi) {
          return c.rosetta->MayContainRange(lo, hi);
        });
        double surf = probe_fpr([&](uint64_t lo, uint64_t hi) {
          return c.surf->MayContainRange(lo, hi);
        });
        bool surf_fits =
            static_cast<double>(c.surf->MemoryBits()) /
                static_cast<double>(n) <=
            bpk + 2.0;
        const char* tag = "bRF";
        if (rosetta < ours && (!surf_fits || rosetta <= surf)) tag = "Ros";
        if (surf_fits && surf < ours && surf < rosetta) tag = "SuR";
        std::printf("%10s", tag);
      }
      std::printf("\n");
    }
  }
  std::printf("\nShape check (paper Fig. 1): Rosetta band at small ranges/"
              "high budgets,\nSuRF band at large ranges, bloomRF covering "
              "the broad middle.\n");
  return 0;
}

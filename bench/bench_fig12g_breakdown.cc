// Figure 12.G: probe-cost breakdown in the LSM store at 22 bits/key —
// filter-probe time, residual CPU, deserialization and I/O wait per
// policy, for range sizes 1..1000.
//
// Note (registry refactor): every backend now has a native
// serialization, so deser_s measures a real parse for all policies.
// Pre-registry, Rosetta/PrefixBloom/Fence blocks stored raw keys and
// rebuilt the structure at load time, which inflated deser_s with
// construction cost; that cost is still visible on the build side
// (Fig. 12.C, filter_create_seconds).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/lsm_bench_util.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 200'000, 5'000);
  Header("Fig. 12.G", "probe-cost breakdown (22 bits/key)", scale);
  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0x126);

  std::printf("%-10s %-9s %9s %9s %9s %9s %9s\n", "filter", "range",
              "total_s", "probe_s", "io_s", "deser_s", "cpu_s");
  for (uint64_t range : {1ULL, 2ULL, 8ULL, 32ULL, 100ULL, 1000ULL}) {
    QueryWorkload workload = MakeQueryWorkload(
        data, scale.queries, range, Distribution::kUniform, 0x61 + range);
    struct Policy {
      const char* name;
      std::shared_ptr<FilterPolicy> policy;
    };
    std::vector<Policy> policies;
    policies.push_back({"bloomRF", NewBloomRFPolicy(22.0, 1e6)});
    policies.push_back({"Rosetta", NewRosettaPolicy(22.0, 1 << 10)});
    policies.push_back({"SuRF", NewSurfPolicy(2, 8)});
    for (auto& p : policies) {
      LsmRunResult result = RunLsmWorkload(data, p.policy, workload,
                                           "/tmp/bench_fig12g");
      double probe_s = static_cast<double>(result.stats.filter_probe_nanos) / 1e9;
      double io_s = static_cast<double>(result.stats.io_nanos) / 1e9;
      double deser_s = static_cast<double>(result.stats.deser_nanos) / 1e9;
      double cpu_s = result.range_seconds - probe_s - io_s;
      if (cpu_s < 0) cpu_s = 0;
      std::printf("%-10s %-9llu %9.3f %9.3f %9.3f %9.3f %9.3f\n", p.name,
                  static_cast<unsigned long long>(range),
                  result.range_seconds, probe_s, io_s, deser_s, cpu_s);
    }
  }
  std::printf("\nShape check (paper): bloomRF has the lowest CPU and total "
              "cost; Rosetta's\nfilter-probe share grows with range size "
              "(doubting); I/O appears on false\npositives only.\n");
  return 0;
}

// Section 6 in-text space-efficiency numbers: bits/key needed for 2%
// range FPR at R = 2^6, 2^10, 2^14, 2^21 — Rosetta's first-cut model
// vs basic bloomRF (model and measured) vs the advised configuration.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "core/fpr_model.h"
#include "core/tuning_advisor.h"
#include "util/random.h"

using namespace bloomrf;

namespace {

double MeasuredRangeFpr(const BloomRFConfig& cfg,
                        const std::set<uint64_t>& keys, uint64_t range,
                        uint64_t queries) {
  BloomRF filter(cfg);
  for (uint64_t k : keys) filter.Insert(k);
  Rng rng(99);
  uint64_t fp = 0, neg = 0;
  for (uint64_t i = 0; i < queries; ++i) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo > UINT64_MAX - (range - 1) ? UINT64_MAX : lo + range - 1;
    auto it = keys.lower_bound(lo);
    if (it != keys.end() && *it <= hi) continue;
    ++neg;
    if (filter.MayContainRange(lo, hi)) ++fp;
  }
  return neg ? static_cast<double>(fp) / static_cast<double>(neg) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scale scale = bench::ParseScale(argc, argv, 200'000, 20'000);
  bench::Header("Sect. 6 table", "bits/key for 2% range FPR", scale);
  const double eps = 0.02;

  std::set<uint64_t> keys;
  {
    Rng rng(7);
    while (keys.size() < scale.keys) keys.insert(rng.Next());
  }

  std::printf("%-8s %-14s %-16s %-22s\n", "log2(R)", "Rosetta(model)",
              "bloomRF(model)", "bloomRF basic measured@17/22bpk");
  for (uint32_t log_r : {6u, 10u, 14u, 21u}) {
    double r = std::ldexp(1.0, static_cast<int>(log_r));
    double rosetta = RosettaBitsPerKey(r, eps);
    double ours = BloomRFBitsPerKey(r, eps, scale.keys, 64);
    double bpk_probe = log_r <= 14 ? 17.0 : 22.0;
    double measured = MeasuredRangeFpr(
        BloomRFConfig::Basic(keys.size(), bpk_probe),
        keys, static_cast<uint64_t>(r), scale.queries);
    std::printf("%-8u %-14.1f %-16.1f measured_fpr=%.4f @%0.f bpk\n", log_r,
                rosetta, ours, measured, bpk_probe);
  }
  std::printf("\nPaper anchors: Rosetta needs 17/22/28 bits-per-key for "
              "R=2^6/2^10/2^14;\nbasic bloomRF covers R=2^14 at 17 bits-per-"
              "key with ~1.5%% and R=2^21 at 22 with ~2.5%%.\n");
  return 0;
}

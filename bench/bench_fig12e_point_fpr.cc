// Figure 12.E1-E3: standalone point-query FPR across space budgets and
// workload distributions, comparing bloomRF, Rosetta, SuRF-Hash, a
// LevelDB-style Bloom filter, and a Cuckoo filter at ~95% occupancy
// with budget-constrained fingerprint sizes.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/standalone_bench_util.h"
#include "filters/bloom_filter.h"
#include "filters/cuckoo_filter.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 2'000'000, 100'000);
  Header("Fig. 12.E", "standalone point FPR (2M keys)", scale);

  for (Distribution dist : {Distribution::kUniform, Distribution::kNormal,
                            Distribution::kZipfian}) {
    Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0x12e);
    QueryWorkload workload =
        MakeQueryWorkload(data, scale.queries, 1, dist, 0xe1 + (int)dist);
    std::printf("\n[workload=%s]\n%-6s %-12s %-12s %-12s %-12s %-12s\n",
                DistributionName(dist), "bpk", "bloomRF", "Rosetta", "SuRF",
                "Bloom", "Cuckoo");
    for (double bpk : {10.0, 12.0, 14.0, 16.0, 18.0, 20.0, 22.0}) {
      StandaloneContenders c = BuildContenders(data, bpk, 1 << 10);
      BloomFilter bloom(data.keys.size(), bpk);
      // Cuckoo: fingerprint sized to the budget at 95% occupancy:
      // bits/key ~= f / (0.95 * load in table) -> f ~= bpk * 0.95.
      uint32_t fp_bits = static_cast<uint32_t>(bpk * 0.95);
      if (fp_bits > 16) fp_bits = 16;
      CuckooFilter cuckoo(data.keys.size(), fp_bits, 0.95);
      for (uint64_t k : data.keys) {
        bloom.Insert(k);
        cuckoo.Insert(k);
      }
      auto point_fpr = [&](auto&& fn) {
        uint64_t fp = 0, misses = 0;
        for (uint64_t y : workload.point_queries) {
          if (data.Contains(y)) continue;
          ++misses;
          if (fn(y)) ++fp;
        }
        return misses ? static_cast<double>(fp) / misses : 0.0;
      };
      std::printf("%-6.0f %-12.6f %-12.6f %-12.6f %-12.6f %-12.6f\n", bpk,
                  point_fpr([&](uint64_t y) { return c.bloomrf->MayContain(y); }),
                  point_fpr([&](uint64_t y) { return c.rosetta->MayContain(y); }),
                  point_fpr([&](uint64_t y) { return c.surf->MayContain(y); }),
                  point_fpr([&](uint64_t y) { return bloom.MayContain(y); }),
                  point_fpr([&](uint64_t y) { return cuckoo.MayContain(y); }));
    }
  }
  std::printf("\nShape check (paper): Cuckoo/Bloom/Rosetta lead pure point "
              "FPR; bloomRF stays\nwithin a small factor (pays for range "
              "support); SuRF-Hash trails at low budgets.\n");
  return 0;
}

// Shared harness utilities for the per-figure benchmark binaries.
//
// Every bench runs at laptop scale by default (so `for b in
// build/bench/*; do $b; done` completes in minutes) and scales to the
// paper's full setup via flags:
//   --keys=N       dataset size (paper: 5e7 for the LSM experiments)
//   --queries=N    query count (paper: 1e5)
//   --full         paper-scale defaults
//   --filter=a,b   restrict to these FilterRegistry backends
//   list-filters   print every registered backend and exit
// or the environment variable BLOOMRF_BENCH_FULL=1.

#ifndef BLOOMRF_BENCH_BENCH_COMMON_H_
#define BLOOMRF_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "filters/registry.h"

namespace bloomrf::bench {

struct Scale {
  uint64_t keys = 1'000'000;
  uint64_t queries = 20'000;
  bool full = false;
  /// Registry names from --filter=; empty means the bench's default
  /// contender set.
  std::vector<std::string> filters;
  /// Whether this bench consumes scale.filters (set by ParseScale).
  bool filter_aware = false;
};

inline void PrintRegisteredFilters() {
  std::printf("registered filters (--filter=<name>[,<name>...]):\n");
  auto& registry = FilterRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    const FilterRegistry::Entry* entry = registry.Find(name);
    std::printf("  %-16s %-14s ranges=%s online=%s\n", name.c_str(),
                entry->display_name.c_str(),
                entry->supports_ranges ? "yes" : "no",
                entry->online ? "yes" : "no");
  }
}

/// `filter_aware` marks benches that consume scale.filters; the others
/// warn instead of silently ignoring a --filter= selection.
inline Scale ParseScale(int argc, char** argv, uint64_t default_keys = 1'000'000,
                        uint64_t default_queries = 20'000,
                        bool filter_aware = false) {
  Scale scale;
  scale.keys = default_keys;
  scale.queries = default_queries;
  scale.filter_aware = filter_aware;
  const char* env = std::getenv("BLOOMRF_BENCH_FULL");
  if (env != nullptr && env[0] == '1') scale.full = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      scale.keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      scale.queries = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      scale.full = true;
    } else if (std::strcmp(argv[i], "list-filters") == 0 ||
               std::strcmp(argv[i], "--list-filters") == 0) {
      PrintRegisteredFilters();
      std::exit(0);
    } else if (std::strncmp(argv[i], "--filter=", 9) == 0) {
      if (!filter_aware) {
        std::fprintf(stderr,
                     "warning: this bench uses a fixed contender set; "
                     "--filter= is ignored\n");
        continue;
      }
      std::string list = argv[i] + 9;
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string name = list.substr(start, comma - start);
        if (!name.empty()) {
          if (FilterRegistry::Instance().Find(name) == nullptr) {
            std::fprintf(stderr, "unknown filter '%s'\n", name.c_str());
            PrintRegisteredFilters();
            std::exit(1);
          }
          scale.filters.push_back(std::move(name));
        }
        start = comma + 1;
      }
    }
  }
  if (scale.full) {
    scale.keys = 50'000'000;
    scale.queries = 100'000;
  }
  return scale;
}

/// The bench's contender set: --filter= selections, or `defaults`.
inline std::vector<std::string> FiltersOrDefault(
    const Scale& scale, std::initializer_list<const char*> defaults) {
  if (!scale.filters.empty()) return scale.filters;
  return {defaults.begin(), defaults.end()};
}

inline void Header(const char* figure, const char* title, const Scale& scale) {
  std::printf("\n=== %s: %s ===\n", figure, title);
  std::printf("(keys=%llu queries=%llu; --full for paper scale%s)\n",
              static_cast<unsigned long long>(scale.keys),
              static_cast<unsigned long long>(scale.queries),
              scale.filter_aware ? ", --filter=<names> to choose backends"
                                 : "");
}

/// Formats a rate as million ops per second.
inline double Mops(uint64_t ops, double seconds) {
  return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0;
}

}  // namespace bloomrf::bench

#endif  // BLOOMRF_BENCH_BENCH_COMMON_H_

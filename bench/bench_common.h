// Shared harness utilities for the per-figure benchmark binaries.
//
// Every bench runs at laptop scale by default (so `for b in
// build/bench/*; do $b; done` completes in minutes) and scales to the
// paper's full setup via flags:
//   --keys=N       dataset size (paper: 5e7 for the LSM experiments)
//   --queries=N    query count (paper: 1e5)
//   --full         paper-scale defaults
// or the environment variable BLOOMRF_BENCH_FULL=1.

#ifndef BLOOMRF_BENCH_BENCH_COMMON_H_
#define BLOOMRF_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace bloomrf::bench {

struct Scale {
  uint64_t keys = 1'000'000;
  uint64_t queries = 20'000;
  bool full = false;
};

inline Scale ParseScale(int argc, char** argv, uint64_t default_keys = 1'000'000,
                        uint64_t default_queries = 20'000) {
  Scale scale;
  scale.keys = default_keys;
  scale.queries = default_queries;
  const char* env = std::getenv("BLOOMRF_BENCH_FULL");
  if (env != nullptr && env[0] == '1') scale.full = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      scale.keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      scale.queries = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      scale.full = true;
    }
  }
  if (scale.full) {
    scale.keys = 50'000'000;
    scale.queries = 100'000;
  }
  return scale;
}

inline void Header(const char* figure, const char* title, const Scale& scale) {
  std::printf("\n=== %s: %s ===\n", figure, title);
  std::printf("(keys=%llu queries=%llu; --full for paper scale)\n",
              static_cast<unsigned long long>(scale.keys),
              static_cast<unsigned long long>(scale.queries));
}

/// Formats a rate as million ops per second.
inline double Mops(uint64_t ops, double seconds) {
  return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0;
}

}  // namespace bloomrf::bench

#endif  // BLOOMRF_BENCH_BENCH_COMMON_H_

// Shared driver for the system-level (mini-LSM) benchmarks, mirroring
// the paper's RocksDB setup: uniformly distributed integer keys,
// fixed-size values, compaction disabled (L0-only SSTs), one filter
// block per SST, and 1e5 empty point-/range-queries drawn from a
// workload distribution.

#ifndef BLOOMRF_BENCH_LSM_BENCH_UTIL_H_
#define BLOOMRF_BENCH_LSM_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "lsm/db.h"
#include "util/timer.h"
#include "workload/key_generator.h"
#include "workload/query_generator.h"

namespace bloomrf::bench {

struct LsmRunResult {
  double range_fpr = 0;
  double point_fpr = 0;
  double range_seconds = 0;
  double point_seconds = 0;
  double create_seconds = 0;
  uint64_t filter_bits = 0;
  uint64_t sst_files = 0;
  LsmStats stats;
};

inline LsmRunResult RunLsmWorkload(const Dataset& data,
                                   std::shared_ptr<FilterPolicy> policy,
                                   const QueryWorkload& workload,
                                   const std::string& dir,
                                   size_t value_size = 64,
                                   uint64_t memtable_bytes = 4u << 20) {
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.dir = dir;
  options.filter_policy = std::move(policy);
  options.memtable_bytes = memtable_bytes;
  Db db(options);
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, value_size));
  db.Flush();

  LsmRunResult result;
  result.create_seconds = db.flush_stats().filter_create_seconds;
  result.filter_bits = db.filter_memory_bits();
  result.sst_files = db.num_tables();

  db.ResetStats();
  uint64_t fp = 0, empties = 0;
  Timer timer;
  for (const RangeQuery& q : workload.range_queries) {
    bool answer = db.RangeMayMatch(q.lo, q.hi);
    if (q.empty) {
      ++empties;
      if (answer) ++fp;
    }
  }
  result.range_seconds = timer.ElapsedSeconds();
  result.range_fpr =
      empties ? static_cast<double>(fp) / static_cast<double>(empties) : 0.0;
  result.stats = db.stats();

  // Point phase: every query is a miss, so any filter probe that
  // passes is a false positive (per-SST accounting, as in the paper).
  db.ResetStats();
  timer.Restart();
  std::string value;
  for (uint64_t y : workload.point_queries) {
    db.Get(y, &value);
  }
  result.point_seconds = timer.ElapsedSeconds();
  const LsmStats& point_stats = db.stats();
  uint64_t positives = point_stats.filter_probes - point_stats.filter_negatives;
  result.point_fpr =
      point_stats.filter_probes
          ? static_cast<double>(positives) /
                static_cast<double>(point_stats.filter_probes)
          : 0.0;
  std::filesystem::remove_all(dir);
  return result;
}

}  // namespace bloomrf::bench

#endif  // BLOOMRF_BENCH_LSM_BENCH_UTIL_H_

// Figure 12.C: filter-creation cost in the LSM store. The dataset is
// split over ~25 L0 SST files (as in the paper); we report total
// filter creation + serialization time per policy across space budgets.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "lsm/db.h"
#include "util/timer.h"
#include "workload/key_generator.h"

using namespace bloomrf;
using namespace bloomrf::bench;

namespace {

double BuildTime(const Dataset& data, std::shared_ptr<FilterPolicy> policy,
                 uint64_t target_ssts) {
  std::string dir = "/tmp/bench_fig12c";
  std::filesystem::remove_all(dir);
  DbOptions options;
  options.dir = dir;
  options.filter_policy = std::move(policy);
  // Value payload 64B: memtable budget set to hit ~target_ssts files.
  options.memtable_bytes =
      std::max<uint64_t>(64 << 10, data.keys.size() * 72 / target_ssts);
  Db db(options);
  Timer total;
  for (uint64_t k : data.keys) db.Put(k, MakeValue(k, 64));
  db.Flush();
  double wall = total.ElapsedSeconds();
  double filter_time = db.flush_stats().filter_create_seconds;
  std::printf("    (ssts=%llu wall=%.2fs filter=%.2fs)",
              static_cast<unsigned long long>(db.num_tables()), wall,
              filter_time);
  std::filesystem::remove_all(dir);
  return filter_time;
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 500'000, 0);
  Header("Fig. 12.C", "filter creation + serialization time (~25 SSTs)",
         scale);
  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0x12c);

  std::printf("%-8s %-30s %-30s %-30s\n", "bpk", "bloomRF", "Rosetta",
              "SuRF");
  for (double bpk : {10.0, 14.0, 18.0, 22.0}) {
    std::printf("%-8.0f", bpk);
    double ours = BuildTime(data, NewBloomRFPolicy(bpk, 1e6), 25);
    double rosetta = BuildTime(data, NewRosettaPolicy(bpk, 1 << 10), 25);
    double surf = BuildTime(data, NewSurfPolicy(2, 8), 25);
    std::printf("\n         creation seconds: bloomRF=%.3f rosetta=%.3f "
                "surf=%.3f\n",
                ours, rosetta, surf);
  }
  std::printf("\nShape check (paper): bloomRF has the lowest creation time "
              "(online inserts,\ncheap tuning); SuRF is the most expensive "
              "(offline trie construction + tuning).\n");
  return 0;
}

// Figure 12.A: online behaviour, single-threaded — overall throughput
// of a mixed insert/lookup workload as the lookup percentage varies
// (10..100%), for point- and range-queries. Keys are inserted unsorted
// and unprepared (bloomRF is online; no build phase).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "util/timer.h"
#include "workload/key_generator.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 500'000, 0);
  Header("Fig. 12.A", "single-threaded insert/lookup mix", scale);

  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0x12a);
  AdvisorParams params;
  params.n = scale.keys;
  params.total_bits = 18 * scale.keys;
  params.max_range = 1e6;
  BloomRFConfig cfg = AdviseConfig(params).config;

  std::printf("%-12s %-22s %-22s\n", "lookups%", "point mix Mops/s",
              "range mix Mops/s");
  for (int lookup_pct = 10; lookup_pct <= 100; lookup_pct += 10) {
    double mops[2];
    for (int mode = 0; mode < 2; ++mode) {
      BloomRF filter(cfg);
      // Pre-populate half the dataset so lookups probe a loaded filter
      // at every mix ratio; the timed phase streams the rest.
      size_t next_insert = data.keys.size() / 2;
      for (size_t i = 0; i < next_insert; ++i) filter.Insert(data.keys[i]);
      Rng rng(0x5eed + lookup_pct);
      uint64_t target_ops = data.keys.size() * 2;
      Timer timer;
      for (uint64_t op = 0; op < target_ops; ++op) {
        bool do_lookup = rng.Uniform(100) < static_cast<uint64_t>(lookup_pct);
        if (do_lookup || next_insert >= data.keys.size()) {
          uint64_t y = rng.Next();
          if (mode == 0) {
            volatile bool r = filter.MayContain(y);
            (void)r;
          } else {
            volatile bool r =
                filter.MayContainRange(y, y + 1023 > y ? y + 1023 : y);
            (void)r;
          }
        } else {
          filter.Insert(data.keys[next_insert++]);
        }
      }
      mops[mode] = Mops(target_ops, timer.ElapsedSeconds());
    }
    std::printf("%-12d %-22.2f %-22.2f\n", lookup_pct, mops[0], mops[1]);
  }
  std::printf("\nShape check (paper): mixed throughput is flat across most "
              "ratios — insertion\nimpact is acceptable (the paper's "
              "conclusion). Our empty-probe early exit makes\nlookup-heavy "
              "mixes *faster* (misses die at the top layer), where the "
              "paper's\ncurves favour insert-heavy mixes.\n");
  return 0;
}

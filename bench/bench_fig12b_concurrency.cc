// Figure 12.B: online behaviour, multi-threaded — per-thread point/
// range lookup throughput while 0..N insert threads run concurrently,
// and per-thread insert throughput while lookups run. bloomRF is a
// lock-free parallel structure (relaxed atomic bit sets).

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "util/timer.h"
#include "workload/key_generator.h"

using namespace bloomrf;
using namespace bloomrf::bench;

int main(int argc, char** argv) {
  Scale scale = ParseScale(argc, argv, 2'000'000, 0);
  Header("Fig. 12.B", "concurrent lookup/insert throughput per thread",
         scale);

  Dataset data = MakeDataset(scale.keys, Distribution::kUniform, 0x12b);
  unsigned hw = std::thread::hardware_concurrency();
  int max_threads = hw >= 8 ? 4 : 2;

  std::printf("%-16s %-16s %-18s %-18s %-18s\n", "lookup-threads",
              "insert-threads", "point Mops/s/thr", "range Mops/s/thr",
              "insert Mops/s/thr");
  for (int lookup_threads = 1; lookup_threads <= max_threads;
       ++lookup_threads) {
    for (int insert_threads = 0; insert_threads <= max_threads;
         insert_threads += 2) {
      BloomRF filter(BloomRFConfig::Basic(scale.keys, 18.0));
      // Pre-populate half so lookups touch a loaded filter.
      for (size_t i = 0; i < data.keys.size() / 2; ++i) {
        filter.Insert(data.keys[i]);
      }
      std::atomic<bool> stop{false};
      std::atomic<uint64_t> point_ops{0}, range_ops{0}, insert_ops{0};

      std::vector<std::thread> threads;
      for (int t = 0; t < lookup_threads; ++t) {
        threads.emplace_back([&, t] {
          Rng rng(100 + t);
          uint64_t local_point = 0, local_range = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            for (int i = 0; i < 512; ++i) {
              uint64_t y = rng.Next();
              volatile bool a = filter.MayContain(y);
              (void)a;
              ++local_point;
              uint64_t hi = y + 4095 > y ? y + 4095 : y;
              volatile bool b = filter.MayContainRange(y, hi);
              (void)b;
              ++local_range;
            }
          }
          point_ops += local_point;
          range_ops += local_range;
        });
      }
      for (int t = 0; t < insert_threads; ++t) {
        threads.emplace_back([&, t] {
          Rng rng(200 + t);
          uint64_t local = 0;
          size_t i = data.keys.size() / 2 + static_cast<size_t>(t);
          while (!stop.load(std::memory_order_relaxed)) {
            for (int j = 0; j < 512; ++j) {
              filter.Insert(data.keys[i % data.keys.size()]);
              i += insert_threads;
              ++local;
            }
          }
          insert_ops += local;
        });
      }
      Timer timer;
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
      stop.store(true);
      for (auto& th : threads) th.join();
      double seconds = timer.ElapsedSeconds();
      std::printf("%-16d %-16d %-18.2f %-18.2f %-18.2f\n", lookup_threads,
                  insert_threads,
                  Mops(point_ops.load(), seconds) / lookup_threads,
                  Mops(range_ops.load(), seconds) / lookup_threads,
                  insert_threads
                      ? Mops(insert_ops.load(), seconds) / insert_threads
                      : 0.0);
    }
  }
  std::printf("\nShape check (paper): lookup throughput per thread barely "
              "moves as insert\nthreads are added; total insert throughput "
              "grows with threads while per-thread\ninsert rate declines.\n");
  return 0;
}

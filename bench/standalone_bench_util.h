// Shared driver for standalone (no LSM) filter comparisons: builds
// bloomRF (advisor-tuned), Rosetta and SuRF-Real over one dataset and
// measures empty-query FPR and probe throughput.

#ifndef BLOOMRF_BENCH_STANDALONE_BENCH_UTIL_H_
#define BLOOMRF_BENCH_STANDALONE_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/bloomrf.h"
#include "core/tuning_advisor.h"
#include "filters/rosetta.h"
#include "filters/surf/surf.h"
#include "util/timer.h"
#include "workload/key_generator.h"
#include "workload/query_generator.h"

namespace bloomrf::bench {

struct StandaloneResult {
  double fpr = 0;
  double seconds = 0;
  double bits_per_key = 0;
};

template <typename ProbeFn>
StandaloneResult MeasureRangeFpr(const QueryWorkload& workload,
                                 ProbeFn&& probe, uint64_t memory_bits,
                                 uint64_t n) {
  StandaloneResult result;
  uint64_t fp = 0, empties = 0;
  Timer timer;
  for (const RangeQuery& q : workload.range_queries) {
    bool answer = probe(q.lo, q.hi);
    if (q.empty) {
      ++empties;
      if (answer) ++fp;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  result.fpr = empties ? static_cast<double>(fp) / empties : 0.0;
  result.bits_per_key =
      static_cast<double>(memory_bits) / static_cast<double>(n);
  return result;
}

struct StandaloneContenders {
  std::unique_ptr<BloomRF> bloomrf;
  std::unique_ptr<Rosetta> rosetta;
  std::unique_ptr<Surf> surf;
};

inline StandaloneContenders BuildContenders(const Dataset& data,
                                            double bits_per_key,
                                            uint64_t max_range) {
  StandaloneContenders c;
  AdvisorParams params;
  params.n = data.keys.size();
  params.total_bits = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(data.keys.size()));
  params.max_range = static_cast<double>(max_range);
  c.bloomrf = std::make_unique<BloomRF>(AdviseConfig(params).config);
  Rosetta::Options ropt;
  ropt.expected_keys = data.keys.size();
  ropt.bits_per_key = bits_per_key;
  ropt.max_range = max_range;
  c.rosetta = std::make_unique<Rosetta>(ropt);
  for (uint64_t k : data.keys) {
    c.bloomrf->Insert(k);
    c.rosetta->Insert(k);
  }
  Surf::Options sopt;
  sopt.suffix_type = SurfSuffixType::kReal;
  sopt.suffix_bits = bits_per_key <= 12 ? 4 : 8;
  c.surf = std::make_unique<Surf>(
      Surf::BuildFromU64(data.sorted_keys, sopt));
  return c;
}

}  // namespace bloomrf::bench

#endif  // BLOOMRF_BENCH_STANDALONE_BENCH_UTIL_H_

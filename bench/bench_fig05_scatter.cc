// Figure 5: PMHF random scatter.
//  (A) how many times words of different layers are overlaid per
//      bit-array element, for uniform/normal/zipfian data;
//  (B) length distribution of 0-bit runs, bloomRF vs a standard BF;
//  (C) distance between consecutive 0-bit runs, bloomRF vs BF.
// Setup follows the paper: 2M keys (scaled), 10 bits/key; the BF gets
// the RocksDB-style floor(10 ln 2) = 6 hash functions, basic bloomRF
// with delta=7 uses k = ceil((64 - log2 n)/7) PMHF.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "core/bloomrf.h"
#include "filters/bloom_filter.h"
#include "util/random.h"

using namespace bloomrf;

namespace {

struct RunStats {
  std::map<uint64_t, uint64_t> run_lengths;  // 0-run length -> count
  std::map<uint64_t, uint64_t> run_gaps;     // distance to next run
};

template <typename BlockFn>
RunStats ScanRuns(BlockFn&& block, uint64_t nblocks) {
  RunStats stats;
  uint64_t run = 0;
  uint64_t gap = 0;
  bool in_run = false;
  for (uint64_t b = 0; b < nblocks; ++b) {
    uint64_t word = block(b);
    for (int i = 0; i < 64; ++i) {
      bool bit = (word >> i) & 1;
      if (!bit) {
        if (!in_run && gap > 0) ++stats.run_gaps[std::min<uint64_t>(gap, 10)];
        in_run = true;
        gap = 0;
        ++run;
      } else {
        if (in_run) {
          ++stats.run_lengths[std::min<uint64_t>(run, 10)];
          run = 0;
          in_run = false;
        }
        ++gap;
      }
    }
  }
  if (in_run) ++stats.run_lengths[std::min<uint64_t>(run, 10)];
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Scale scale = bench::ParseScale(argc, argv, 2'000'000, 0);
  bench::Header("Fig. 5", "PMHF random scatter vs standard Bloom filter",
                scale);

  for (Distribution dist : {Distribution::kUniform, Distribution::kNormal,
                            Distribution::kZipfian}) {
    auto keys = GenerateDistinctKeys(scale.keys, dist, 0x5ca77e);
    BloomRFConfig cfg = BloomRFConfig::Basic(keys.size(), 10.0, 64, 7);
    BloomRF filter(cfg);
    BloomFilter bloom(keys.size(), 10.0);
    for (uint64_t k : keys) {
      filter.Insert(k);
      bloom.Insert(k);
    }

    // (A) word-overlay per 64-bit element, per layer.
    std::printf("\n[%s] (A) words overlaid per 64-bit element, per layer\n",
                DistributionName(dist));
    size_t layers = cfg.num_layers();
    uint64_t blocks = filter.SegmentBlocks(0);
    std::vector<std::vector<uint32_t>> overlay(
        layers, std::vector<uint32_t>(blocks, 0));
    size_t sample = std::min<size_t>(keys.size(), 200'000);
    for (size_t i = 0; i < sample; ++i) {
      for (size_t layer = 0; layer < layers; ++layer) {
        ++overlay[layer][filter.WordIndexForKey(keys[i], layer, 0)];
      }
    }
    std::printf("%-7s", "layer");
    for (int c = 0; c <= 8; ++c) std::printf("%9s%d", "x", c);
    std::printf("\n");
    for (size_t layer = 0; layer < layers; ++layer) {
      std::map<uint32_t, uint64_t> histogram;
      for (uint32_t count : overlay[layer]) {
        ++histogram[std::min<uint32_t>(count, 8)];
      }
      std::printf("%-7zu", layer + 1);
      for (uint32_t c = 0; c <= 8; ++c) {
        double frac = 100.0 * static_cast<double>(histogram[c]) /
                      static_cast<double>(blocks);
        std::printf("%9.2f%%", frac);
      }
      std::printf("\n");
    }

    // (B)/(C): 0-run lengths and gaps, bloomRF vs BF.
    RunStats ours = ScanRuns(
        [&](uint64_t b) { return filter.SegmentBlock(0, b); },
        filter.SegmentBlocks(0));
    RunStats theirs =
        ScanRuns([&](uint64_t b) { return bloom.Block(b); }, bloom.Blocks());
    std::printf("[%s] (B) 0-run length counts (1..9, 10 = >=10)\n",
                DistributionName(dist));
    std::printf("%-10s", "len");
    for (uint64_t l = 1; l <= 10; ++l) std::printf("%10llu", (unsigned long long)l);
    std::printf("\n%-10s", "bloomRF");
    for (uint64_t l = 1; l <= 10; ++l) {
      std::printf("%10llu", (unsigned long long)ours.run_lengths[l]);
    }
    std::printf("\n%-10s", "Bloom");
    for (uint64_t l = 1; l <= 10; ++l) {
      std::printf("%10llu", (unsigned long long)theirs.run_lengths[l]);
    }
    std::printf("\n[%s] (C) distance to next 0-run (1..9, 10 = >=10)\n",
                DistributionName(dist));
    std::printf("%-10s", "bloomRF");
    for (uint64_t l = 1; l <= 10; ++l) {
      std::printf("%10llu", (unsigned long long)ours.run_gaps[l]);
    }
    std::printf("\n%-10s", "Bloom");
    for (uint64_t l = 1; l <= 10; ++l) {
      std::printf("%10llu", (unsigned long long)theirs.run_gaps[l]);
    }
    std::printf("\n");
  }
  std::printf("\nShape check (paper): flat overlay curves per layer; run-\n"
              "length and gap histograms of bloomRF track the BF closely -> \n"
              "PMHF scatter randomly at word granularity (C ~= 1).\n");
  return 0;
}
